//! Incremental epoch execution: continuous jobs that fold deltas into
//! a materialized result instead of re-running the batch.
//!
//! A batch job answers one question once. A *standing* job answers it
//! continuously while input keeps arriving: the [`EpochDriver`] ingests
//! each newly arrived delta as one barrier-aligned **epoch** — maps
//! only the delta's blocks, ships them through the ordinary shuffle
//! plane under an epoch tag (so a straggler batch from a committed
//! epoch is ack-dropped, never double-folded), then folds the drained
//! grouped records into the stream's materialized state and publishes
//! a fresh snapshot. Committing a small delta therefore costs work
//! proportional to the *delta*, not to everything that ever arrived —
//! the whole point versus re-running the batch per arrival.
//!
//! Consistency contract (read-your-epoch): [`EpochDriver::commit_epoch`]
//! returns only after the epoch's snapshot is published, and
//! [`EpochDriver::snapshot`] for any `epoch <= published()` serves
//! exactly that epoch's result — from the pinned oCache copy when it
//! still carries the requested epoch, else from the short in-memory
//! retention window. The publish step is a single atomic
//! compare-exchange on the published-epoch board; a reader never
//! observes a half-folded epoch.
//!
//! Fault surface: the window between the wave's barrier (every delta
//! map committed and drained) and the publish CAS is where a crash or
//! partition hits the fold itself. The driver announces that edge via
//! [`DstEvent::EpochBarrier`] so the DST harness can aim faults at
//! exactly that point; a failed epoch surfaces as a typed [`JobError`]
//! and leaves the stream readable at its previous epoch.

use crate::job::JobError;
use crate::live::{DstEvent, LiveCluster, LiveStats, MapReduce, PoolJob};
use bytes::Bytes;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How many recent epochs' reduced snapshots stay resident in driver
/// memory. The oCache copy always carries the *latest* epoch; the
/// retention window is what keeps `snapshot(published - 1)` answerable
/// while a reader races a commit.
const RETAINED_SNAPSHOTS: usize = 2;

/// What a continuous job runs: the app, its identity, and its shape.
/// The `user` doubles as the cache-quota tenant for the materialized
/// state, exactly like a batch submission.
#[derive(Clone)]
pub struct StreamSpec {
    pub app: Arc<dyn MapReduce>,
    /// Stream name: epoch deltas are ingested as DHT FS files derived
    /// from it, and the materialized partitions live in oCache under
    /// the `epoch:{name}` namespace.
    pub name: String,
    pub user: String,
    pub reducers: usize,
}

/// One published epoch's reduced output, per partition (partition
/// order, each internally key-sorted). Cheap to hand out: readers
/// share the driver's copy.
pub type EpochSnapshot = Arc<Vec<Vec<(String, String)>>>;

/// What one committed epoch reports back.
pub struct EpochReport {
    /// The epoch just published (1-based).
    pub epoch: u32,
    /// Map-side records folded into the materialized state this epoch.
    pub records_folded: u64,
    /// Whether every materialized partition reached its pinned oCache
    /// home. `false` means the publish fell back to driver memory only
    /// (e.g. a partition's home was unreachable) — the snapshot is
    /// still served, from retention.
    pub cached: bool,
    /// The wave's executor statistics (delta-sized, not stream-sized).
    pub stats: LiveStats,
    /// The published snapshot itself.
    pub snapshot: EpochSnapshot,
}

/// Commit-side state, under one lock: epochs of a stream are strictly
/// serialized (barrier-aligned), and the grouped multiset is the fold
/// accumulator.
struct EpochState {
    /// Next epoch to commit (1-based; 0 means nothing published).
    next_epoch: u32,
    /// Monotonic ingest counter: a failed epoch may be retried, so the
    /// delta file name must be unique per *attempt*, not per epoch.
    ingests: u64,
    /// The materialized grouped multiset, per partition: every value
    /// every committed epoch ever shuffled, keyed exactly as a one-shot
    /// batch over the concatenated input would key it.
    parts: Vec<HashMap<String, Vec<String>>>,
    closed: bool,
}

/// The continuous-job driver: owns one standing job slot on the
/// cluster and turns arriving deltas into published epochs. Fronted by
/// [`crate::server::JobServer::open_stream`] in production; usable
/// directly (self-executing waves) in tests and benches.
pub struct EpochDriver {
    cluster: Arc<LiveCluster>,
    app: Arc<dyn MapReduce>,
    name: String,
    user: String,
    tenant: u16,
    reducers: usize,
    /// The standing jid: one slot for the stream's whole lifetime,
    /// reused by every epoch wave (disambiguated by the epoch tag).
    jid: u32,
    /// The published-epoch board: readers order against the single
    /// release-CAS here, never against the commit lock.
    published: AtomicU64,
    state: Mutex<EpochState>,
    /// Recent epochs' reduced snapshots, separate from the commit lock
    /// so readers are never blocked behind an in-flight epoch.
    retained: Mutex<VecDeque<(u32, EpochSnapshot)>>,
}

impl EpochDriver {
    /// Open a stream: reserves the standing job slot and the tenant
    /// identity. No cluster work happens until the first commit.
    pub fn new(cluster: Arc<LiveCluster>, spec: StreamSpec) -> EpochDriver {
        assert!(spec.reducers > 0);
        let tenant = cluster.tenant_of(&spec.user);
        let jid = cluster.reserve_jid();
        EpochDriver {
            cluster,
            app: spec.app,
            name: spec.name,
            user: spec.user,
            tenant,
            reducers: spec.reducers,
            jid,
            published: AtomicU64::new(0),
            state: Mutex::new(EpochState {
                next_epoch: 1,
                ingests: 0,
                parts: Vec::new(),
                closed: false,
            }),
            retained: Mutex::new(VecDeque::new()),
        }
    }

    /// Ingest one delta and commit it as the next epoch, executing the
    /// wave's map tasks inline on the calling thread. The pool-backed
    /// path ([`crate::server::StreamHandle::commit_epoch`]) shares the
    /// shared workers instead.
    pub fn commit_epoch(&self, delta: &[u8]) -> Result<EpochReport, JobError> {
        let cluster = Arc::clone(&self.cluster);
        self.commit_epoch_via(delta, &|job| {
            for tid in 0..job.task_count() {
                cluster.pool_exec_task(job, tid, job.task_node(tid));
            }
        })
    }

    /// Commit one epoch, delegating wave execution to `exec`. The
    /// callback must return only once every task of the job has been
    /// driven to completion ([`PoolJob::done`] — committed or aborted);
    /// the driver then drains the barrier, folds, and publishes.
    pub(crate) fn commit_epoch_via(
        &self,
        delta: &[u8],
        exec: &dyn Fn(&Arc<PoolJob>),
    ) -> Result<EpochReport, JobError> {
        let mut st = self.state.lock().expect("epoch state");
        if st.closed {
            return Err(JobError::Cancelled);
        }
        let epoch = st.next_epoch;
        st.ingests += 1;
        // Unique per ingest *attempt*: a failed epoch can be retried
        // without colliding with its own partial upload.
        let file = format!("{}.e{}i{}", self.name, epoch, st.ingests);
        self.cluster.try_upload(&file, &self.user, delta)?;
        let job = self.cluster.begin_epoch_wave(
            Arc::clone(&self.app),
            &file,
            &self.user,
            self.reducers,
            self.jid,
            epoch,
        )?;
        exec(&job);
        debug_assert!(job.done(), "wave executor returned before the barrier");
        // Barrier reached, not yet published: the epoch-boundary fault
        // point. DST aims crashes/partitions here.
        self.cluster.observe(DstEvent::EpochBarrier { epoch });
        let (delta_parts, stats) = self.cluster.drain_pool_job(&job)?;
        if st.parts.is_empty() {
            st.parts = vec![HashMap::new(); self.reducers];
        }
        let mut records_folded = 0u64;
        for (p, grouped) in delta_parts.into_iter().enumerate() {
            for (k, mut vs) in grouped {
                records_folded += vs.len() as u64;
                st.parts[p].entry(k).or_default().append(&mut vs);
            }
        }
        let snapshot = materialize(&*self.app, &st.parts);
        let cached = self.publish_ocache(epoch, &snapshot);
        {
            let mut ret = self.retained.lock().expect("retained");
            ret.push_back((epoch, Arc::clone(&snapshot)));
            while ret.len() > RETAINED_SNAPSHOTS {
                ret.pop_front();
            }
        }
        // The commit lock already serializes epochs; the CAS is what
        // *publishes* — a reader that observes `epoch` is guaranteed
        // the retention/oCache writes above happened-before it.
        let prev = u64::from(epoch) - 1;
        self.published
            .compare_exchange(prev, u64::from(epoch), Ordering::AcqRel, Ordering::Acquire)
            .expect("epochs are serialized; the board can only hold epoch-1 here");
        st.next_epoch += 1;
        Ok(EpochReport { epoch, records_folded, cached, stats, snapshot })
    }

    /// The newest published epoch (0 before the first commit).
    pub fn published(&self) -> u32 {
        self.published.load(Ordering::Acquire) as u32
    }

    /// Read a published epoch's materialized result. Read-your-epoch:
    /// any `epoch` up to [`published`](Self::published) that is still
    /// within reach — the latest epoch always (pinned oCache copy,
    /// with the in-memory retention window as fallback), earlier
    /// epochs while retained. Unpublished or aged-out epochs yield
    /// `None`.
    pub fn snapshot(&self, epoch: u32) -> Option<EpochSnapshot> {
        if epoch == 0 || u64::from(epoch) > self.published.load(Ordering::Acquire) {
            return None;
        }
        if let Some(s) = {
            let ret = self.retained.lock().expect("retained");
            ret.iter().find(|(e, _)| *e == epoch).map(|(_, s)| Arc::clone(s))
        } {
            return Some(s);
        }
        // Retention aged it out: the oCache copy serves iff it still
        // carries the requested epoch (stable tags hold the latest).
        let mut parts = Vec::with_capacity(self.reducers);
        for p in 0..self.reducers {
            let data = self.cluster.ocache_get(&self.ocache_app(), &part_tag(p))?;
            let (e, records) = decode_partition(&data)?;
            if e != epoch {
                return None;
            }
            parts.push(records);
        }
        Some(Arc::new(parts))
    }

    /// Close the stream: further commits are refused and the
    /// materialized oCache entries are released back to ordinary LRU
    /// lifetime (they age out; a reopened stream republishes).
    pub fn close(&self) {
        let mut st = self.state.lock().expect("epoch state");
        if st.closed {
            return;
        }
        st.closed = true;
        drop(st);
        for p in 0..self.reducers {
            self.cluster.ocache_unpin(&self.ocache_app(), &part_tag(p));
        }
    }

    /// oCache namespace of this stream's materialized partitions.
    fn ocache_app(&self) -> String {
        format!("epoch:{}", self.name)
    }

    /// Publish every partition's reduced records to its pinned,
    /// tenant-tagged oCache home under the stream's stable tags.
    /// Best-effort per partition: an unreachable home degrades that
    /// partition to retention-only service, it does not fail the epoch.
    fn publish_ocache(&self, epoch: u32, snap: &EpochSnapshot) -> bool {
        let app = self.ocache_app();
        let mut all = true;
        for (p, records) in snap.iter().enumerate() {
            let data = encode_partition(epoch, records);
            if !self.cluster.ocache_put_pinned(&app, &part_tag(p), data, None, self.tenant) {
                all = false;
            }
        }
        all
    }
}

/// Stable per-partition oCache tag: the same tag every epoch, so the
/// pinned footprint is one entry per partition, not one per epoch.
fn part_tag(p: usize) -> String {
    format!("materialized/p{p}")
}

/// Sort and reduce the materialized grouped multiset into the
/// snapshot shape a one-shot batch would produce: for every partition,
/// keys in order, `reduce` over each key's full value multiset.
fn materialize(app: &dyn MapReduce, parts: &[HashMap<String, Vec<String>>]) -> EpochSnapshot {
    let mut out = Vec::with_capacity(parts.len());
    for grouped in parts {
        let mut entries: Vec<(&String, &Vec<String>)> = grouped.iter().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
        let mut part = Vec::new();
        for (k, vs) in entries {
            app.reduce(k, vs, &mut |ok, ov| part.push((ok, ov)));
        }
        out.push(part);
    }
    Arc::new(out)
}

/// Wire shape of one materialized partition in oCache: `u32` epoch,
/// `u32` record count, then length-prefixed key/value pairs. The
/// embedded epoch is what lets a reader detect that the stable tag has
/// moved on past the epoch it asked for.
fn encode_partition(epoch: u32, records: &[(String, String)]) -> Bytes {
    let mut buf = Vec::with_capacity(16 + records.len() * 16);
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for (k, v) in records {
        buf.extend_from_slice(&(k.len() as u32).to_le_bytes());
        buf.extend_from_slice(k.as_bytes());
        buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
        buf.extend_from_slice(v.as_bytes());
    }
    Bytes::from(buf)
}

/// Inverse of [`encode_partition`]. `None` on any truncation or
/// malformed length — a corrupt cache entry must read as a miss, not
/// a panic.
fn decode_partition(data: &[u8]) -> Option<(u32, Vec<(String, String)>)> {
    fn take_u32(data: &[u8], at: &mut usize) -> Option<u32> {
        let b = data.get(*at..*at + 4)?;
        *at += 4;
        Some(u32::from_le_bytes(b.try_into().ok()?))
    }
    fn take_str(data: &[u8], at: &mut usize) -> Option<String> {
        let len = take_u32(data, at)? as usize;
        let b = data.get(*at..*at + len)?;
        *at += len;
        String::from_utf8(b.to_vec()).ok()
    }
    let at = &mut 0usize;
    let epoch = take_u32(data, at)?;
    let count = take_u32(data, at)? as usize;
    let mut records = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let k = take_str(data, at)?;
        let v = take_str(data, at)?;
        records.push((k, v));
    }
    Some((epoch, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ReusePolicy;
    use crate::live::LiveConfig;

    struct WordCount;
    impl MapReduce for WordCount {
        fn map(&self, block: &[u8], emit: &mut dyn FnMut(String, String)) {
            for w in String::from_utf8_lossy(block).split_whitespace() {
                emit(w.to_string(), "1".to_string());
            }
        }
        fn reduce(&self, key: &str, values: &[String], emit: &mut dyn FnMut(String, String)) {
            emit(key.to_string(), values.len().to_string());
        }
    }

    fn driver_on(c: &Arc<LiveCluster>, name: &str, reducers: usize) -> EpochDriver {
        EpochDriver::new(
            Arc::clone(c),
            StreamSpec {
                app: Arc::new(WordCount),
                name: name.to_string(),
                user: "tester".to_string(),
                reducers,
            },
        )
    }

    /// The correctness anchor: N epochs folded incrementally must be
    /// byte-identical to one batch over the concatenated input.
    #[test]
    fn folded_epochs_match_one_shot_batch() {
        // Every line is 19 bytes and the block size is a multiple of
        // it, so block boundaries never split a word — in the
        // per-epoch delta files *and* in the concatenated oracle file
        // (whose block boundaries fall at different input offsets).
        let c = Arc::new(LiveCluster::new(LiveConfig::small().with_block_size(19 * 8)));
        let d = driver_on(&c, "stream", 4);
        let deltas = [
            "apple banana apple\n".repeat(40),
            "cherry banana pear\n".repeat(60),
            "apple date elder f\n".repeat(30),
        ];
        let mut concat = String::new();
        for (i, delta) in deltas.iter().enumerate() {
            concat.push_str(delta);
            let rep = d.commit_epoch(delta.as_bytes()).expect("epoch commits");
            assert_eq!(rep.epoch, i as u32 + 1);
            assert_eq!(d.published(), rep.epoch);
        }
        c.upload("oracle", "tester", concat.as_bytes());
        let (oracle, _) = c.run_job_partitioned(&WordCount, "oracle", "tester", 4, ReusePolicy::default());
        let snap = d.snapshot(3).expect("published epoch readable");
        assert_eq!(*snap, oracle, "materialized result != one-shot batch");
        d.close();
    }

    #[test]
    fn read_your_epoch_and_retention_window() {
        let c = Arc::new(LiveCluster::new(LiveConfig::small().with_block_size(256)));
        let d = driver_on(&c, "ry", 2);
        assert!(d.snapshot(0).is_none(), "epoch 0 is never published");
        assert!(d.snapshot(1).is_none(), "unpublished epoch unreadable");
        for e in 1..=4u32 {
            let delta = format!("w{e} w{e} x\n").repeat(20);
            d.commit_epoch(delta.as_bytes()).expect("commit");
            assert!(d.snapshot(e).is_some(), "read-your-epoch at {e}");
        }
        // Inside the retention window both recent epochs serve; the
        // first epoch has aged out of retention *and* the stable
        // oCache tags have moved past it.
        assert!(d.snapshot(4).is_some());
        assert!(d.snapshot(3).is_some());
        assert!(d.snapshot(1).is_none(), "aged-out epoch reads as a miss");
        assert!(d.snapshot(5).is_none(), "future epoch unreadable");
        d.close();
        assert!(
            matches!(d.commit_epoch(b"late\n"), Err(JobError::Cancelled)),
            "commits after close are refused"
        );
    }

    #[test]
    fn snapshot_survives_ocache_eviction_via_retention() {
        // Tiny cache: the pinned publish may be rejected outright
        // (quota/capacity), so the snapshot must come from retention.
        let c = Arc::new(LiveCluster::new(
            LiveConfig::small().with_block_size(256).with_cache_per_node(512),
        ));
        let d = driver_on(&c, "tiny", 2);
        let delta = "alpha beta gamma delta epsilon zeta\n".repeat(50);
        let rep = d.commit_epoch(delta.as_bytes()).expect("commit");
        let snap = d.snapshot(rep.epoch).expect("retention serves despite cache pressure");
        assert!(!snap.iter().all(|p| p.is_empty()));
        d.close();
    }

    #[test]
    fn partition_codec_roundtrips_and_rejects_garbage() {
        let records = vec![
            ("alpha".to_string(), "1".to_string()),
            ("beta".to_string(), "22".to_string()),
            (String::new(), String::new()),
        ];
        let data = encode_partition(7, &records);
        let (e, back) = decode_partition(&data).expect("roundtrip");
        assert_eq!(e, 7);
        assert_eq!(back, records);
        assert!(decode_partition(&data[..data.len() - 1]).is_none(), "truncation");
        assert!(decode_partition(&[1, 2, 3]).is_none(), "short header");
        assert!(decode_partition(&[]).is_none());
    }
}
