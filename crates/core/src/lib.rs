//! # eclipse-core
//!
//! The EclipseMR MapReduce engine: job/task model, proactive shuffle,
//! the simulator-driven executor that reproduces the paper's cluster
//! experiments, and a live multithreaded executor that runs real
//! map/reduce functions over real data with the same placement logic.

pub mod dst;
pub mod epoch;
pub mod job;
pub mod live;
pub mod resource_manager;
pub mod server;
pub mod shuffle;
pub mod sim_exec;
pub mod timeline;

pub use dst::{
    ChaosObserver, DstFault, DstPreset, DstReport, DstSweep, DstWorkload, FaultConfig, NetOp,
    Point, Verdict,
};
pub use epoch::{EpochDriver, EpochReport, EpochSnapshot, StreamSpec};
pub use job::{JobError, JobId, JobReport, JobSpec, ReadSource, ReusePolicy};
pub use live::{
    DstEvent, DstObserver, FaultPlan, LiveCluster, LiveConfig, LiveStats, MapReduce,
    RecoveryReport, SpeculationConfig, TransportKind,
};
/// The transport plane (re-exported so downstream crates reach the
/// chaos API and stats types without a direct dependency).
pub use eclipse_net as net;
pub use resource_manager::{ResourceManager, RmError, TickOutcome};
pub use server::{
    AdmissionPolicy, JobHandle, JobServer, JobServerConfig, PoolJobSpec, StreamHandle,
};
pub use shuffle::{Spill, SpillBuffer};
pub use timeline::{TaskEvent, TaskKind, Timeline};
pub use sim_exec::{EclipseConfig, EclipseSim, SchedulerKind};
