//! The delay-scheduling variant (paper §II-F) — EclipseMR's in-framework
//! baseline, modeled on Spark's delay scheduler.
//!
//! Differences from LAF:
//! * The cache hash-key ranges are **static**, permanently aligned with
//!   the DHT file system ring — they never adapt to the workload.
//! * A task prefers the server whose (static) range covers its key; if
//!   that server has no free slot the task **waits** up to
//!   `wait_threshold` seconds (5 s, the Spark default cited by the
//!   paper) before being reassigned to any idle server.

use eclipse_ring::{NodeId, Ring};
use eclipse_util::{HashKey, KeyRange};

/// Delay-scheduler parameters.
#[derive(Clone, Copy, Debug)]
pub struct DelayConfig {
    /// Seconds a task waits for its locality-preferred server *per
    /// locality level* (Spark's `spark.locality.wait` = 5 s in the
    /// paper).
    pub wait_threshold: f64,
    /// Locality levels the wait is paid through before the task truly
    /// gives up (Spark demotes process-local → node-local → rack-local,
    /// waiting the threshold at each level).
    pub locality_levels: u32,
}

impl Default for DelayConfig {
    fn default() -> Self {
        DelayConfig { wait_threshold: 5.0, locality_levels: 3 }
    }
}

impl DelayConfig {
    /// Total wait a task tolerates before abandoning locality.
    pub fn effective_wait(&self) -> f64 {
        self.wait_threshold * self.locality_levels.max(1) as f64
    }
}

/// What the policy tells the executor to do with a task.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DelayDecision {
    /// Run on the preferred server now (it has a free slot).
    RunPreferred(NodeId),
    /// Preferred server busy, but it frees up within the threshold:
    /// wait until `until` then run there.
    WaitFor { node: NodeId, until: f64 },
    /// Waited past the threshold: run on the fallback server instead.
    Fallback(NodeId),
}

impl DelayDecision {
    /// The server the task ultimately runs on.
    pub fn node(&self) -> NodeId {
        match *self {
            DelayDecision::RunPreferred(n) => n,
            DelayDecision::WaitFor { node, .. } => node,
            DelayDecision::Fallback(n) => n,
        }
    }

    /// Did the task run on its locality-preferred server?
    pub fn is_local(&self) -> bool {
        !matches!(self, DelayDecision::Fallback(_))
    }
}

/// The delay scheduling policy. Stateless besides the static range table;
/// the executor supplies per-node availability times.
#[derive(Clone, Debug)]
pub struct DelayScheduler {
    cfg: DelayConfig,
    ranges: Vec<(NodeId, KeyRange)>,
    /// Tasks that gave up locality (fallback count).
    fallbacks: u64,
    waits: u64,
    immediate: u64,
}

impl DelayScheduler {
    /// Ranges are fixed to the file-system ring at construction.
    pub fn new(ring: &Ring, cfg: DelayConfig) -> DelayScheduler {
        assert!(!ring.is_empty());
        DelayScheduler { cfg, ranges: ring.ranges(), fallbacks: 0, waits: 0, immediate: 0 }
    }

    pub fn config(&self) -> &DelayConfig {
        &self.cfg
    }

    /// Re-align the static ranges with a changed ring (elastic join or
    /// leave). Placement counters survive: the scheduler is the same,
    /// only the membership moved under it.
    pub fn set_nodes(&mut self, ring: &Ring) {
        assert!(!ring.is_empty());
        self.ranges = ring.ranges();
    }

    pub fn ranges(&self) -> &[(NodeId, KeyRange)] {
        &self.ranges
    }

    /// The locality-preferred server for `hkey` under the static ranges.
    pub fn preferred(&self, hkey: HashKey) -> NodeId {
        self.ranges
            .iter()
            .find(|(_, r)| r.contains(hkey))
            .map(|(n, _)| *n)
            .expect("static ranges tile the ring")
    }

    /// Decide placement for a task submitted at `now`.
    ///
    /// `free_at(node)` must return the earliest time `node` has a free
    /// slot (`now` or earlier means idle). The fallback server is the one
    /// with the earliest free slot, ties broken by node order —
    /// "the task is reassigned to another server as in Spark's delay
    /// scheduling".
    pub fn decide<F>(&mut self, hkey: HashKey, now: f64, mut free_at: F) -> DelayDecision
    where
        F: FnMut(NodeId) -> f64,
    {
        let pref = self.preferred(hkey);
        let pref_free = free_at(pref);
        if pref_free <= now {
            self.immediate += 1;
            return DelayDecision::RunPreferred(pref);
        }
        // Earliest-free alternative. The scheduler reevaluates a waiting
        // task when slots free elsewhere, so the wait that matters is the
        // preferred server's backlog *relative to* the best alternative:
        // the task keeps its locality unless switching would save more
        // than the threshold.
        let fallback = self
            .ranges
            .iter()
            .map(|(n, _)| *n)
            .min_by(|&a, &b| {
                free_at(a).partial_cmp(&free_at(b)).unwrap().then(a.cmp(&b))
            })
            .expect("non-empty");
        let best_free = free_at(fallback).max(now);
        if pref_free - best_free <= self.cfg.effective_wait() {
            self.waits += 1;
            return DelayDecision::WaitFor { node: pref, until: pref_free };
        }
        self.fallbacks += 1;
        DelayDecision::Fallback(fallback)
    }

    /// Tasks that ran immediately on the preferred server.
    pub fn immediate_count(&self) -> u64 {
        self.immediate
    }

    /// Tasks that waited (≤ threshold) for the preferred server.
    pub fn wait_count(&self) -> u64 {
        self.waits
    }

    /// Tasks that abandoned locality.
    pub fn fallback_count(&self) -> u64 {
        self.fallbacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(n: usize) -> DelayScheduler {
        DelayScheduler::new(&Ring::with_servers(n, "d"), DelayConfig::default())
    }

    #[test]
    fn idle_preferred_runs_immediately() {
        let mut s = sched(4);
        let k = HashKey::of_name("blk");
        let pref = s.preferred(k);
        let d = s.decide(k, 10.0, |_| 0.0);
        assert_eq!(d, DelayDecision::RunPreferred(pref));
        assert!(d.is_local());
        assert_eq!(s.immediate_count(), 1);
    }

    #[test]
    fn busy_preferred_waits_within_threshold() {
        let mut s = sched(4);
        let k = HashKey::of_name("blk");
        let pref = s.preferred(k);
        let d = s.decide(k, 10.0, |n| if n == pref { 13.0 } else { 10.0 });
        assert_eq!(d, DelayDecision::WaitFor { node: pref, until: 13.0 });
        assert!(d.is_local());
        assert_eq!(s.wait_count(), 1);
    }

    #[test]
    fn long_wait_falls_back_to_earliest_free() {
        let mut s = sched(4);
        let k = HashKey::of_name("blk");
        let pref = s.preferred(k);
        let idle = s.ranges().iter().map(|(n, _)| *n).find(|&n| n != pref).unwrap();
        let d = s.decide(k, 10.0, |n| {
            if n == pref {
                100.0
            } else if n == idle {
                10.0
            } else {
                11.0
            }
        });
        assert_eq!(d, DelayDecision::Fallback(idle));
        assert!(!d.is_local());
        assert_eq!(s.fallback_count(), 1);
    }

    #[test]
    fn boundary_wait_exactly_threshold() {
        let mut s = sched(2);
        let k = HashKey::of_name("b");
        let pref = s.preferred(k);
        // Exactly at the effective wait (3 levels × 5 s): still waits.
        let d = s.decide(k, 0.0, |n| if n == pref { 15.0 } else { 0.0 });
        assert!(matches!(d, DelayDecision::WaitFor { .. }));
        // Past it: falls back.
        let d2 = s.decide(k, 0.0, |n| if n == pref { 15.001 } else { 0.0 });
        assert!(matches!(d2, DelayDecision::Fallback(_)));
    }

    #[test]
    fn static_ranges_match_ring() {
        let ring = Ring::with_servers(6, "d");
        let s = DelayScheduler::new(&ring, DelayConfig::default());
        for i in 0..50u64 {
            let k = HashKey::of_name(&format!("p{i}"));
            assert_eq!(s.preferred(k), ring.owner_of(k).unwrap().id);
        }
    }

    #[test]
    fn set_nodes_realigns_ranges_and_keeps_counters() {
        let mut s = sched(3);
        let k = HashKey::of_name("blk");
        s.decide(k, 0.0, |_| 0.0);
        assert_eq!(s.immediate_count(), 1);
        let grown = Ring::with_servers(5, "d");
        s.set_nodes(&grown);
        for i in 0..50u64 {
            let probe = HashKey::of_name(&format!("p{i}"));
            assert_eq!(s.preferred(probe), grown.owner_of(probe).unwrap().id);
        }
        assert_eq!(s.immediate_count(), 1, "counters survive the rebuild");
    }

    #[test]
    fn same_key_always_same_preferred() {
        let s = sched(8);
        let k = HashKey::of_name("sticky");
        let p = s.preferred(k);
        for _ in 0..10 {
            assert_eq!(s.preferred(k), p, "static ranges never move");
        }
    }
}
