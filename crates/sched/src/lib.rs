//! # eclipse-sched
//!
//! EclipseMR's job schedulers:
//!
//! * [`LafScheduler`] — the paper's contribution (Algorithm 1): box-kernel
//!   density estimation + exponential moving average + equally-probable
//!   CDF partitioning of the cache hash-key ranges.
//! * [`DelayScheduler`] — the Spark-style delay-scheduling variant the
//!   paper implements inside EclipseMR as its baseline (§II-F).
//! * [`FairScheduler`] — the Hadoop fair-scheduler decision used by the
//!   Hadoop comparison model (§III-E).

pub mod delay;
pub mod fair;
pub mod laf;

pub use delay::{DelayConfig, DelayDecision, DelayScheduler};
pub use fair::{FairDecision, FairScheduler};
pub use laf::{LafConfig, LafScheduler};
