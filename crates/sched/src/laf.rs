//! The Locality-Aware Fair (LAF) job scheduler — paper Algorithm 1.
//!
//! LAF is a *statistical prediction* scheduler: it never tracks which
//! server caches which object. Instead it
//!
//! 1. assigns each task to the server whose **cache hash-key range**
//!    covers the task's input key (locality by consistent hashing), and
//! 2. every `window` tasks, re-partitions the key space into
//!    **equally-probable** per-server ranges computed from a box-kernel
//!    density estimate of recent accesses folded into an exponential
//!    moving average with weight `alpha` (fairness).
//!
//! Hot keys narrow their owner's range so fewer future tasks land there,
//! while the hot object itself gets re-read and cached by the neighbors
//! that inherit the surrounding keys — in the single-hot-key extreme the
//! object ends up replicated in every server's cache (§II-E).

use eclipse_ring::{NodeId, Ring};
use eclipse_util::{HashKey, KeyHistogram, KeyRange};
use serde::{Deserialize, Serialize};

/// LAF tuning parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LafConfig {
    /// Histogram bins over the key space ("a large number of fine-grained
    /// histogram bins").
    pub num_bins: usize,
    /// Box-kernel bandwidth `k`: each access bumps `k` adjacent bins by
    /// `1/k`. Larger = smoother PDF.
    pub bandwidth: usize,
    /// Moving-average weight α. The paper sweeps {0.001, 1} in Fig. 7 and
    /// fixes 0.001 for the remaining experiments.
    pub alpha: f64,
    /// Re-partition after this many recorded accesses (Algorithm 1's N).
    pub window: u64,
}

impl Default for LafConfig {
    fn default() -> Self {
        // Window and bandwidth control the estimator's variance: with W
        // samples cut into n ranges, each boundary wobbles by
        // ~sqrt(1/W)/density of the ring — too much wobble pushes ranges
        // past the predecessor/successor replica arcs and turns local
        // reads remote. W=1024 and a generous box kernel keep boundary
        // noise well inside one arc on a 40-node cluster while still
        // adapting within a few hundred tasks.
        LafConfig { num_bins: 4096, bandwidth: 64, alpha: 0.001, window: 1024 }
    }
}

/// The LAF scheduler state.
///
/// ```
/// use eclipse_ring::Ring;
/// use eclipse_sched::{LafConfig, LafScheduler};
/// use eclipse_util::HashKey;
///
/// let ring = Ring::with_servers_evenly_spaced(5, "w");
/// let mut laf = LafScheduler::new(&ring, LafConfig { window: 100, ..Default::default() });
/// // Repeated submissions of one key stick to one server (locality) …
/// let key = HashKey::of_name("popular-block");
/// let first = laf.assign(key);
/// assert_eq!(laf.assign(key), first);
/// // … while the range table always tiles the whole ring (fairness).
/// let covered: u128 = laf.ranges().iter().map(|(_, r)| r.len()).sum();
/// assert_eq!(covered, 1u128 << 64);
/// ```
#[derive(Clone, Debug)]
pub struct LafScheduler {
    cfg: LafConfig,
    /// Worker servers in clockwise ring order; ranges are assigned in
    /// this order so range `i` belongs to `nodes[i]`.
    nodes: Vec<NodeId>,
    ranges: Vec<(NodeId, KeyRange)>,
    /// Recent-window histogram (Algorithm 1's `distr`).
    recent: KeyHistogram,
    /// Moving-average histogram (`maDistr`).
    ma: KeyHistogram,
    repartitions: u64,
    assignments: u64,
    /// Reusable candidate buffer for [`assign_balanced`](Self::assign_balanced)
    /// — the per-task hot path allocates nothing in steady state.
    scratch: Vec<NodeId>,
}

impl LafScheduler {
    /// Start with ranges aligned to the DHT file-system ring (weight 0
    /// behaviour) — the paper's initial state.
    pub fn new(ring: &Ring, cfg: LafConfig) -> LafScheduler {
        assert!(!ring.is_empty(), "scheduler needs at least one worker");
        assert!(cfg.window > 0);
        let ranges = ring.ranges();
        LafScheduler {
            cfg,
            nodes: ranges.iter().map(|(n, _)| *n).collect(),
            ranges,
            recent: KeyHistogram::new(cfg.num_bins),
            ma: KeyHistogram::new(cfg.num_bins),
            repartitions: 0,
            assignments: 0,
            scratch: Vec::new(),
        }
    }

    pub fn config(&self) -> &LafConfig {
        &self.cfg
    }

    /// Current cache hash-key range table.
    pub fn ranges(&self) -> &[(NodeId, KeyRange)] {
        &self.ranges
    }

    /// Times the key space has been re-partitioned.
    pub fn repartitions(&self) -> u64 {
        self.repartitions
    }

    pub fn assignments(&self) -> u64 {
        self.assignments
    }

    /// The server whose cache range covers `hkey` (pure lookup, no
    /// statistics update) — Algorithm 1 lines 2–8.
    pub fn owner_of(&self, hkey: HashKey) -> NodeId {
        self.ranges
            .iter()
            .find(|(_, r)| r.contains(hkey))
            .map(|(n, _)| *n)
            .expect("range table tiles the ring")
    }

    /// Every server eligible to run a task with key `hkey`.
    ///
    /// The primary candidate is the range owner. Additionally, any server
    /// whose range *boundary* falls in the same histogram bin as `hkey`
    /// is eligible — including servers whose range collapsed to empty.
    /// The estimator cannot distinguish positions within one bin, and
    /// this is what realizes the paper's extreme case: with one ultra-hot
    /// key every boundary collapses into its bin, all servers become
    /// candidates, and "all the worker servers will eventually read the
    /// same hot data ... and replicate it in their distributed in-memory
    /// caches" (§II-E). The owner is always first.
    pub fn candidates(&self, hkey: HashKey) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.candidates_into(hkey, &mut out);
        out
    }

    /// Allocation-free form of [`candidates`](Self::candidates): clears
    /// `out` and fills it with the eligible servers, owner first. The
    /// scheduling hot path reuses one buffer across tasks.
    pub fn candidates_into(&self, hkey: HashKey, out: &mut Vec<NodeId>) {
        out.clear();
        let owner = self.owner_of(hkey);
        out.push(owner);
        let bins = self.cfg.num_bins as u128;
        let bin = ((hkey.0 as u128 * bins) >> 64) as u64;
        let bin_lo = HashKey((((bin as u128) << 64) / bins) as u64);
        let bin_hi = if bin as u128 + 1 >= bins {
            HashKey(0)
        } else {
            HashKey(((((bin + 1) as u128) << 64) / bins) as u64)
        };
        let bin_range = KeyRange::new(bin_lo, bin_hi);
        for (node, range) in &self.ranges {
            if *node == owner {
                continue;
            }
            // Candidate if the range starts or ends inside the key's bin
            // (covers both collapsed-empty ranges anchored in the bin and
            // neighbors whose boundary crosses the bin).
            if bin_range.contains(range.start()) || bin_range.contains(range.end()) {
                out.push(*node);
            }
        }
    }

    /// Assign a task whose input data hashes to `hkey`: returns the
    /// worker, records the access (lines 9–10), and re-partitions when
    /// the window fills (lines 11–24).
    pub fn assign(&mut self, hkey: HashKey) -> NodeId {
        let node = self.owner_of(hkey);
        self.record(hkey);
        node
    }

    /// Assign with load awareness — Algorithm 1's `selectAvailableServer`
    /// loop, read together with §III-B's "it does not make tasks wait
    /// for 5 seconds": servers pull tasks as their slots free, preferring
    /// tasks whose keys fall in their own range; a task whose owner is
    /// busy therefore starts immediately on whichever server is free
    /// (instant spill). Locality is preserved *statistically* by the
    /// equal-probability ranges — spills are rare exactly when the range
    /// table matches the workload. `free_at(node)` returns the earliest
    /// slot time.
    pub fn assign_balanced<F>(&mut self, hkey: HashKey, now: f64, mut free_at: F) -> NodeId
    where
        F: FnMut(NodeId) -> f64,
    {
        // Reuse the scheduler-owned buffer: the per-task path performs
        // no allocation once the buffer has grown to the cluster size.
        let mut cands = std::mem::take(&mut self.scratch);
        self.candidates_into(hkey, &mut cands);
        // A free candidate (owner first, then range-boundary neighbors)
        // takes the task with locality intact.
        let node = match cands.iter().copied().find(|&c| free_at(c) <= now) {
            Some(local) => local,
            None => {
                // Owner busy. If some other server has an idle slot, it
                // takes the task *now* — LAF never idles a slot while
                // work queues (the delay scheduler's failure mode,
                // §III-B). If the whole cluster is busy, the task queues
                // at its owner: locality wins once everyone has work.
                // Minimum over (free time, node id), free servers only.
                let mut best: Option<(f64, NodeId)> = None;
                for &n in &self.nodes {
                    let f = free_at(n);
                    if f > now {
                        continue;
                    }
                    let better = match best {
                        None => true,
                        Some((bf, bn)) => f.partial_cmp(&bf).unwrap().then(n.cmp(&bn)).is_lt(),
                    };
                    if better {
                        best = Some((f, n));
                    }
                }
                best.map(|(_, n)| n).unwrap_or(cands[0])
            }
        };
        self.scratch = cands;
        self.record(hkey);
        node
    }

    /// Pick a backup placement for a speculative re-execution of a task
    /// keyed by `hkey` whose primary attempt runs on `avoid`: the
    /// least-loaded eligible candidate (owner + range-boundary
    /// neighbors) other than `avoid` and anything in `exclude`, falling
    /// back to the least-loaded server cluster-wide. Ties break by node
    /// id for determinism. Pure lookup — no statistics update; the
    /// original assignment already recorded the access.
    pub fn backup_for<F>(
        &mut self,
        hkey: HashKey,
        avoid: NodeId,
        exclude: &[NodeId],
        mut load_of: F,
    ) -> Option<NodeId>
    where
        F: FnMut(NodeId) -> u64,
    {
        let mut cands = std::mem::take(&mut self.scratch);
        self.candidates_into(hkey, &mut cands);
        let eligible = |n: NodeId| n != avoid && !exclude.contains(&n);
        let mut best: Option<(u64, NodeId)> = None;
        let mut consider = |n: NodeId, best: &mut Option<(u64, NodeId)>| {
            if !eligible(n) {
                return;
            }
            let l = load_of(n);
            let better = match *best {
                None => true,
                Some((bl, bn)) => l.cmp(&bl).then(n.cmp(&bn)).is_lt(),
            };
            if better {
                *best = Some((l, n));
            }
        };
        for &c in &cands {
            consider(c, &mut best);
        }
        if best.is_none() {
            for &n in &self.nodes {
                consider(n, &mut best);
            }
        }
        self.scratch = cands;
        best.map(|(_, n)| n)
    }

    /// Record an access and re-partition when the window fills.
    fn record(&mut self, hkey: HashKey) {
        self.assignments += 1;
        self.recent.add(hkey, self.cfg.bandwidth);
        if self.recent.samples() >= self.cfg.window {
            self.repartition();
        }
    }

    /// Fold the recent window into the moving average, rebuild the CDF,
    /// and cut equally-probable ranges.
    ///
    /// With `alpha == 0` the moving average never accumulates mass, and
    /// the ranges stay at their initial file-system alignment — the
    /// paper's "weight factor 0" behaviour ("scheduling decisions based
    /// on the fixed static hash key ranges, which is perfectly aligned
    /// with the hash keys of the DHT file system").
    fn repartition(&mut self) {
        self.ma.merge_moving_average(&self.recent, self.cfg.alpha);
        self.recent.reset();
        self.repartitions += 1;
        if self.ma.total() <= 0.0 {
            return;
        }
        let cdf = self.ma.to_cdf();
        let parts = cdf.partition(self.nodes.len());
        self.ranges = self.nodes.iter().copied().zip(parts).collect();
    }

    /// Rebuild for a changed membership (join/leave/failure). The moving
    /// average survives so the access history keeps steering placement;
    /// ranges are re-cut for the new server count immediately.
    pub fn set_nodes(&mut self, ring: &Ring) {
        assert!(!ring.is_empty());
        self.nodes = ring.node_ids();
        let cdf = self.ma.to_cdf();
        let parts = cdf.partition(self.nodes.len());
        self.ranges = self.nodes.iter().copied().zip(parts).collect();
    }

    /// Expose the moving-average histogram (diagnostics and tests).
    pub fn ma_histogram(&self) -> &KeyHistogram {
        &self.ma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_util::stats;

    fn sched(n: usize, cfg: LafConfig) -> LafScheduler {
        LafScheduler::new(&Ring::with_servers(n, "w"), cfg)
    }

    /// Uniform keys → after a few windows, assignments spread evenly.
    #[test]
    fn uniform_workload_balances() {
        let mut s = sched(8, LafConfig { window: 128, ..Default::default() });
        let mut counts = vec![0u64; 8];
        for i in 0..20_000u64 {
            let k = HashKey::of_name(&format!("blk{i}"));
            let node = s.assign(k);
            counts[node.index()] += 1;
        }
        let loads: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let imb = stats::imbalance(&loads);
        assert!(imb < 1.25, "imbalance {imb} counts {counts:?}");
        assert!(s.repartitions() > 100);
    }

    /// Skewed keys: with alpha=1 (pure recent window) assignments stay
    /// balanced even though the key distribution is extremely hot.
    #[test]
    fn skewed_workload_balances_with_alpha_one() {
        let mut s = sched(
            5,
            LafConfig { window: 200, alpha: 1.0, bandwidth: 8, num_bins: 4096 },
        );
        // Warm up the estimator with one window of the skewed pattern.
        let hot_keys: Vec<HashKey> =
            (0..10).map(|i| HashKey::of_name(&format!("hot{i}"))).collect();
        let mut counts = vec![0u64; 5];
        for i in 0..30_000u64 {
            let k = hot_keys[(i % hot_keys.len() as u64) as usize];
            let node = s.assign(k);
            if i >= 1000 {
                counts[node.index()] += 1;
            }
        }
        let loads: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let imb = stats::imbalance(&loads);
        assert!(imb < 1.6, "imbalance {imb} counts {counts:?}");
    }

    /// Repeated submissions of the same key go to the same server between
    /// re-partitions — the data-locality half of the bargain.
    #[test]
    fn same_key_sticks_between_repartitions() {
        let mut s = sched(6, LafConfig { window: 1000, ..Default::default() });
        let k = HashKey::of_name("popular-block");
        let first = s.assign(k);
        for _ in 0..500 {
            assert_eq!(s.assign(k), first);
        }
    }

    /// A single ultra-hot key collapses every range boundary into its
    /// bin: all servers become candidates and a busy owner spills hot
    /// tasks across the whole cluster — the paper's §II-E extreme case
    /// ("all the worker servers will eventually read the same hot data").
    #[test]
    fn single_hot_key_spreads_over_all_servers() {
        let mut s = sched(
            4,
            LafConfig { window: 100, alpha: 1.0, bandwidth: 1, num_bins: 4096 },
        );
        let hot = HashKey::from_unit(0.3);
        for _ in 0..200 {
            s.assign(hot);
        }
        // All boundaries collapsed into the hot bin → everyone serves it.
        let cands = s.candidates(hot);
        assert_eq!(cands.len(), 4, "ranges: {:?}", s.ranges());
        // Interior ranges collapse to (at most) one histogram bin.
        let tiny = s
            .ranges()
            .iter()
            .filter(|(_, r)| r.fraction() <= 1.0 / 4096.0 + 1e-12)
            .count();
        assert!(tiny >= 2, "{:?}", s.ranges());
        // Load-aware assignment spills to idle servers when the
        // preferred candidates fill up: model each node as busy once it
        // holds 100 tasks, and the hot key floods every cache in turn.
        let mut counts = vec![0u64; 4];
        for _ in 0..400 {
            let snapshot = counts.clone();
            let n = s.assign_balanced(hot, 0.0, |id| {
                if snapshot[id.index()] >= 100 {
                    1.0
                } else {
                    0.0
                }
            });
            counts[n.index()] += 1;
        }
        assert!(counts.iter().all(|&c| c >= 90), "hot key not spread: {counts:?}");
    }

    /// In the common case (no collapse) a key deep inside a range has
    /// exactly one candidate — locality is preserved.
    #[test]
    fn interior_key_has_single_candidate() {
        let s = sched(4, LafConfig::default());
        // Initial ranges are ring-aligned; find a key well inside one.
        let (_, r) = s.ranges()[0];
        let mid = HashKey(r.start().0.wrapping_add((r.len() / 2) as u64));
        let cands = s.candidates(mid);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0], s.owner_of(mid));
    }

    /// alpha=0: ranges never move from the initial file-system alignment
    /// ("the LAF job scheduler makes scheduling decisions based on the
    /// fixed static hash key ranges").
    #[test]
    fn alpha_zero_keeps_static_ranges() {
        let ring = Ring::with_servers(5, "w");
        let mut s = LafScheduler::new(&ring, LafConfig { window: 50, alpha: 0.0, ..Default::default() });
        let initial = s.ranges().to_vec();
        for i in 0..5000u64 {
            s.assign(HashKey::of_name(&format!("x{i}")));
        }
        assert!(s.repartitions() > 0);
        assert_eq!(s.ranges(), &initial[..], "alpha=0 must not move ranges");
    }

    /// Ranges always tile the ring after any number of repartitions.
    #[test]
    fn ranges_always_tile() {
        let mut s = sched(7, LafConfig { window: 64, ..Default::default() });
        for i in 0..5000u64 {
            s.assign(HashKey::of_name(&format!("k{}", i % 13)));
            if i % 512 == 0 {
                let covered: u128 = s.ranges().iter().map(|(_, r)| r.len()).sum();
                assert_eq!(covered, 1u128 << 64);
            }
        }
    }

    /// Membership change re-cuts ranges over the new node set.
    #[test]
    fn membership_change_recuts() {
        let mut ring = Ring::with_servers(6, "w");
        let mut s = LafScheduler::new(&ring, LafConfig::default());
        let victim = ring.node_ids()[2];
        ring.remove(victim).unwrap();
        s.set_nodes(&ring);
        assert_eq!(s.ranges().len(), 5);
        assert!(s.ranges().iter().all(|(n, _)| *n != victim));
        let covered: u128 = s.ranges().iter().map(|(_, r)| r.len()).sum();
        assert_eq!(covered, 1u128 << 64);
    }

    /// Backup placement avoids the straggler's node, prefers the
    /// least-loaded server, and is deterministic under ties.
    #[test]
    fn backup_avoids_straggler_and_prefers_idle() {
        let mut s = sched(4, LafConfig::default());
        let k = HashKey::from_unit(0.4);
        let slow = s.owner_of(k);
        let loads = [7u64, 7, 7, 7];
        let b = s.backup_for(k, slow, &[], |n| loads[n.index()]).unwrap();
        assert_ne!(b, slow);
        // Loads all equal → smallest eligible id wins, deterministically.
        assert_eq!(b, s.backup_for(k, slow, &[], |n| loads[n.index()]).unwrap());
        // A strictly idler server wins over the tie-break pick.
        let idle = b;
        let b2 = s
            .backup_for(k, slow, &[idle], |n| if n == idle { 0 } else { 5 })
            .unwrap();
        assert_ne!(b2, idle, "excluded nodes must not be chosen");
        assert_ne!(b2, slow);
    }

    /// owner_of and assign agree.
    #[test]
    fn owner_of_matches_assign() {
        let mut s = sched(9, LafConfig::default());
        for i in 0..100u64 {
            let k = HashKey::of_name(&format!("f{i}"));
            assert_eq!(s.owner_of(k), s.assign(k));
        }
    }
}
