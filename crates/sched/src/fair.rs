//! Hadoop-style fair scheduler baseline (used by the Hadoop comparison
//! model, §III-E: "We use the default fair scheduling in Hadoop").
//!
//! Simplified to the decision that matters for the evaluation: a task
//! prefers a server that physically stores one of its input block's
//! replicas (HDFS locality), falling back to the least-loaded server.
//! There is no hash-range structure and no delay wait.

use eclipse_ring::NodeId;

/// Fair scheduler over `n` workers.
#[derive(Clone, Debug)]
pub struct FairScheduler {
    nodes: usize,
    local_hits: u64,
    remote: u64,
}

/// Outcome of a fair-scheduling decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FairDecision {
    pub node: NodeId,
    /// Did the task land on a replica holder?
    pub data_local: bool,
}

impl FairScheduler {
    pub fn new(nodes: usize) -> FairScheduler {
        assert!(nodes > 0);
        FairScheduler { nodes, local_hits: 0, remote: 0 }
    }

    /// Place a task whose input replicas live on `holders`.
    ///
    /// `free_at(node)` gives the earliest slot availability. The decision:
    /// the earliest-free replica holder if any holder frees up no later
    /// than the globally earliest-free server, otherwise the globally
    /// earliest-free server (fairness beats locality — Hadoop's fair
    /// scheduler does not wait).
    pub fn decide<F>(&mut self, holders: &[NodeId], now: f64, mut free_at: F) -> FairDecision
    where
        F: FnMut(NodeId) -> f64,
    {
        let all_best = (0..self.nodes as u32)
            .map(NodeId)
            .min_by(|&a, &b| free_at(a).partial_cmp(&free_at(b)).unwrap().then(a.cmp(&b)))
            .expect("nodes > 0");
        let holder_best = holders
            .iter()
            .copied()
            .min_by(|&a, &b| free_at(a).partial_cmp(&free_at(b)).unwrap().then(a.cmp(&b)));
        let global_free = free_at(all_best).max(now);
        match holder_best {
            Some(h) if free_at(h).max(now) <= global_free => {
                self.local_hits += 1;
                FairDecision { node: h, data_local: true }
            }
            _ => {
                self.remote += 1;
                FairDecision { node: all_best, data_local: holders.contains(&all_best) }
            }
        }
    }

    pub fn local_hits(&self) -> u64 {
        self.local_hits
    }

    pub fn remote_assignments(&self) -> u64 {
        self.remote
    }

    /// Fraction of decisions that achieved data locality.
    pub fn locality_ratio(&self) -> f64 {
        let total = self.local_hits + self.remote;
        if total == 0 {
            0.0
        } else {
            self.local_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefers_idle_holder() {
        let mut s = FairScheduler::new(4);
        let d = s.decide(&[NodeId(2)], 0.0, |_| 0.0);
        assert_eq!(d.node, NodeId(2));
        assert!(d.data_local);
        assert_eq!(s.local_hits(), 1);
    }

    #[test]
    fn busy_holder_loses_to_idle_stranger() {
        let mut s = FairScheduler::new(4);
        let d = s.decide(&[NodeId(2)], 0.0, |n| if n == NodeId(2) { 50.0 } else { 0.0 });
        assert_eq!(d.node, NodeId(0), "earliest-free non-holder, ties by id");
        assert!(!d.data_local);
        assert_eq!(s.remote_assignments(), 1);
    }

    #[test]
    fn picks_least_loaded_holder_among_many() {
        let mut s = FairScheduler::new(4);
        let d = s.decide(&[NodeId(1), NodeId(3)], 0.0, |n| match n {
            NodeId(1) => 5.0,
            NodeId(3) => 2.0,
            _ => 2.0,
        });
        // Holder 3 frees at the same time as the global best → locality.
        assert_eq!(d.node, NodeId(3));
        assert!(d.data_local);
    }

    #[test]
    fn no_holders_goes_least_loaded() {
        let mut s = FairScheduler::new(3);
        let d = s.decide(&[], 0.0, |n| n.0 as f64);
        assert_eq!(d.node, NodeId(0));
        assert!(!d.data_local);
    }

    #[test]
    fn locality_ratio_accumulates() {
        let mut s = FairScheduler::new(2);
        s.decide(&[NodeId(0)], 0.0, |_| 0.0);
        s.decide(&[NodeId(0)], 0.0, |n| if n == NodeId(0) { 9.0 } else { 0.0 });
        assert!((s.locality_ratio() - 0.5).abs() < 1e-12);
    }
}
