//! The decentralized DHT file system: placement, metadata service,
//! replication and failure recovery.
//!
//! This is the *control plane* — pure placement state driven by both the
//! live executor and the simulator. Actual block payloads for the live
//! executor live in [`crate::store::BlockStore`].

use crate::meta::{BlockId, FileMetadata};
use eclipse_ring::{NodeId, Ring, RingError};
use eclipse_util::HashKey;
use std::collections::{BTreeMap, HashMap};

/// Errors surfaced by the DHT file system.
#[derive(Debug, PartialEq)]
pub enum FsError {
    Ring(RingError),
    FileExists(String),
    FileNotFound(String),
    /// Permission check failed at the metadata owner.
    PermissionDenied { file: String, user: String },
    BlockNotFound(BlockId),
    /// All replicas of a block were lost (owner + predecessor + successor
    /// failed together — beyond the paper's fault model).
    DataLoss(BlockId),
}

impl From<RingError> for FsError {
    fn from(e: RingError) -> Self {
        FsError::Ring(e)
    }
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::Ring(e) => write!(f, "ring error: {e}"),
            FsError::FileExists(n) => write!(f, "file already exists: {n}"),
            FsError::FileNotFound(n) => write!(f, "file not found: {n}"),
            FsError::PermissionDenied { file, user } => {
                write!(f, "user {user} may not access {file}")
            }
            FsError::BlockNotFound(b) => write!(f, "block not found: {b:?}"),
            FsError::DataLoss(b) => write!(f, "all replicas lost for block {b:?}"),
        }
    }
}

impl std::error::Error for FsError {}

/// A single re-replication step in a recovery plan: copy `bytes` of block
/// `block` from `from` to `to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryCopy {
    pub block: BlockId,
    pub bytes: u64,
    pub from: NodeId,
    pub to: NodeId,
}

/// Configuration for the DHT FS.
#[derive(Clone, Copy, Debug)]
pub struct DhtFsConfig {
    pub block_size: u64,
    /// Extra replicas per block/metadata beyond the owner (2 in the
    /// paper: predecessor and successor).
    pub replicas: usize,
}

impl Default for DhtFsConfig {
    fn default() -> Self {
        DhtFsConfig { block_size: eclipse_util::DEFAULT_BLOCK_SIZE, replicas: 2 }
    }
}

/// The DHT file system control plane.
///
/// ```
/// use eclipse_dhtfs::{DhtFs, DhtFsConfig};
/// use eclipse_ring::Ring;
/// use eclipse_util::MB;
///
/// let ring = Ring::with_servers_evenly_spaced(6, "srv");
/// let mut fs = DhtFs::new(ring, DhtFsConfig { block_size: 64 * MB, replicas: 2 });
/// let meta = fs.upload("dataset.bin", "alice", 256 * MB).unwrap();
/// assert_eq!(meta.num_blocks(), 4);
/// // Permission checks happen at the decentralized metadata owner.
/// assert!(fs.open("dataset.bin", "alice").is_ok());
/// assert!(fs.open("dataset.bin", "mallory").is_err());
/// ```
#[derive(Clone, Debug)]
pub struct DhtFs {
    cfg: DhtFsConfig,
    ring: Ring,
    /// File name -> metadata. Decentralized in the real system; here we
    /// additionally record *where* each record lives so the metadata
    /// lookup cost can be charged to the right server.
    files: HashMap<String, FileMetadata>,
    meta_home: HashMap<String, NodeId>,
    /// Block -> current replica holders, owner first.
    replicas: BTreeMap<BlockId, Vec<NodeId>>,
    /// Block sizes for recovery accounting.
    block_sizes: BTreeMap<BlockId, u64>,
    /// Per-node stored bytes (primary + replica).
    node_bytes: HashMap<NodeId, u64>,
}

impl DhtFs {
    pub fn new(ring: Ring, cfg: DhtFsConfig) -> DhtFs {
        DhtFs {
            cfg,
            ring,
            files: HashMap::new(),
            meta_home: HashMap::new(),
            replicas: BTreeMap::new(),
            block_sizes: BTreeMap::new(),
            node_bytes: HashMap::new(),
        }
    }

    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    pub fn config(&self) -> &DhtFsConfig {
        &self.cfg
    }

    /// The server whose DHT range covers the file-name hash — where the
    /// metadata record lives and permission checks happen.
    pub fn metadata_owner(&self, name: &str) -> Result<NodeId, FsError> {
        Ok(self.ring.owner_of(HashKey::of_name(name))?.id)
    }

    /// Upload a file: partition into blocks, store metadata at its owner,
    /// place each block at its key's owner plus replicas.
    pub fn upload(&mut self, name: &str, owner: &str, size: u64) -> Result<&FileMetadata, FsError> {
        if self.files.contains_key(name) {
            return Err(FsError::FileExists(name.to_string()));
        }
        let meta = FileMetadata::partition(name, owner, size, self.cfg.block_size);
        let home = self.ring.owner_of(meta.key)?.id;
        for b in &meta.blocks {
            let holders = self.ring.replica_set(b.key, self.cfg.replicas)?;
            for &h in &holders {
                *self.node_bytes.entry(h).or_insert(0) += b.size;
            }
            self.replicas.insert(b.id, holders);
            self.block_sizes.insert(b.id, b.size);
        }
        self.meta_home.insert(name.to_string(), home);
        self.files.insert(name.to_string(), meta);
        Ok(&self.files[name])
    }

    /// Open a file as `user`: permission check at the metadata owner,
    /// returning the metadata. Matches the paper's step ①/② in Fig. 2.
    pub fn open(&self, name: &str, user: &str) -> Result<&FileMetadata, FsError> {
        let meta = self.files.get(name).ok_or_else(|| FsError::FileNotFound(name.to_string()))?;
        if meta.owner != user {
            return Err(FsError::PermissionDenied {
                file: name.to_string(),
                user: user.to_string(),
            });
        }
        Ok(meta)
    }

    /// Metadata without a permission check (internal lookups).
    pub fn stat(&self, name: &str) -> Result<&FileMetadata, FsError> {
        self.files.get(name).ok_or_else(|| FsError::FileNotFound(name.to_string()))
    }

    pub fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// Where the metadata record physically lives.
    pub fn metadata_home(&self, name: &str) -> Result<NodeId, FsError> {
        self.meta_home.get(name).copied().ok_or_else(|| FsError::FileNotFound(name.to_string()))
    }

    /// Current replica holders of a block, primary first.
    pub fn block_holders(&self, id: BlockId) -> Result<&[NodeId], FsError> {
        self.replicas.get(&id).map(|v| v.as_slice()).ok_or(FsError::BlockNotFound(id))
    }

    /// Primary holder of a block.
    pub fn block_primary(&self, id: BlockId) -> Result<NodeId, FsError> {
        Ok(self.block_holders(id)?[0])
    }

    /// The closest replica of `id` to `reader`: the reader itself if it
    /// holds one, else the primary.
    pub fn nearest_replica(&self, id: BlockId, reader: NodeId) -> Result<NodeId, FsError> {
        let holders = self.block_holders(id)?;
        Ok(if holders.contains(&reader) { reader } else { holders[0] })
    }

    /// Record that `node` now holds a copy of `id` (the caller performed
    /// the actual byte transfer). Used by replicated map-out to widen a
    /// block's holder set beyond the configured replica count; `fail_node`
    /// handles the extra holders like any other replica. No-op when the
    /// node already holds the block.
    pub fn add_replica(&mut self, id: BlockId, node: NodeId) -> Result<(), FsError> {
        let bytes = self.block_sizes.get(&id).copied().ok_or(FsError::BlockNotFound(id))?;
        let holders = self.replicas.get_mut(&id).ok_or(FsError::BlockNotFound(id))?;
        if !holders.contains(&node) {
            holders.push(node);
            *self.node_bytes.entry(node).or_insert(0) += bytes;
        }
        Ok(())
    }

    /// Bytes stored on `node` (primaries plus replicas).
    pub fn bytes_on(&self, node: NodeId) -> u64 {
        self.node_bytes.get(&node).copied().unwrap_or(0)
    }

    /// Per-node byte counts for all members (skew measurement).
    pub fn bytes_per_node(&self) -> Vec<(NodeId, u64)> {
        self.ring.node_ids().into_iter().map(|id| (id, self.bytes_on(id))).collect()
    }

    /// Admit a joining server. Existing blocks stay where they are —
    /// consistent hashing means only the joiner's new arc changes owner,
    /// and reads keep following the recorded holder sets — while new
    /// uploads and recovery plans immediately use the larger ring.
    pub fn join(&mut self, info: eclipse_ring::ServerInfo) -> Result<(), FsError> {
        self.ring.insert(info)?;
        Ok(())
    }

    /// The ring key of a stored block, recomputed from its file's
    /// metadata.
    fn block_key(&self, id: BlockId) -> HashKey {
        let meta = self
            .files
            .values()
            .find(|m| m.key == id.file)
            .expect("block belongs to a known file");
        meta.blocks[id.index as usize].key
    }

    /// Plan the block pulls a joining server owes under the grown ring:
    /// every block whose ideal replica set now includes `joiner` gets a
    /// copy from its current primary holder. Metadata records whose key
    /// the joiner now owns move to it immediately (they are control
    /// plane only). The replica table is *not* touched — the caller
    /// performs each transfer and records the successes with
    /// [`add_replica`](Self::add_replica), so a failed pull leaves the
    /// old holders authoritative and costs nothing but a future remote
    /// read. Holder sets that exceed the ideal are left alone; extra
    /// replicas are harmless and age out through later failures.
    pub fn join_plan(&mut self, joiner: NodeId) -> Result<Vec<RecoveryCopy>, FsError> {
        if !self.ring.contains(joiner) {
            return Err(FsError::Ring(eclipse_ring::RingError::UnknownNode(joiner)));
        }
        let mut plan = Vec::new();
        for (&id, holders) in &self.replicas {
            if holders.contains(&joiner) {
                continue;
            }
            let ideal = self.ring.replica_set(self.block_key(id), self.cfg.replicas)?;
            if ideal.contains(&joiner) {
                let bytes = self.block_sizes[&id];
                plan.push(RecoveryCopy { block: id, bytes, from: holders[0], to: joiner });
            }
        }
        let names: Vec<String> = self
            .meta_home
            .iter()
            .filter(|(name, &home)| {
                home != joiner
                    && self.ring.owner_of(self.files[name.as_str()].key).map(|o| o.id)
                        == Ok(joiner)
            })
            .map(|(n, _)| n.clone())
            .collect();
        for name in names {
            self.meta_home.insert(name, joiner);
        }
        Ok(plan)
    }

    /// Remove a gracefully leaving node and compute the handoff plan —
    /// the dual of [`fail_node`](Self::fail_node), except the leaver is
    /// still alive and serving, so every copy is sourced *from the
    /// leaver itself* and a block whose only holder was the leaver is a
    /// handoff, not a loss. The control-plane state is updated
    /// immediately; the caller performs the transfers before letting
    /// the leaver deregister.
    pub fn leave_node(&mut self, leaving: NodeId) -> Result<Vec<RecoveryCopy>, FsError> {
        self.ring.remove(leaving)?;
        self.node_bytes.remove(&leaving);
        let mut plan = Vec::new();
        let block_ids: Vec<BlockId> = self.replicas.keys().copied().collect();
        for id in block_ids {
            let key = self.block_key(id);
            let holders = self.replicas.get_mut(&id).expect("key just listed");
            let Some(pos) = holders.iter().position(|&h| h == leaving) else {
                continue;
            };
            holders.remove(pos);
            let bytes = self.block_sizes[&id];
            let ideal = self.ring.replica_set(key, self.cfg.replicas)?;
            let missing: Vec<NodeId> =
                ideal.iter().copied().filter(|n| !holders.contains(n)).collect();
            for target in missing {
                let holders = self.replicas.get_mut(&id).expect("key just listed");
                holders.push(target);
                *self.node_bytes.entry(target).or_insert(0) += bytes;
                plan.push(RecoveryCopy { block: id, bytes, from: leaving, to: target });
            }
            if self.replicas[&id].is_empty() {
                // Cannot happen: an empty ideal set means an empty ring,
                // which `Ring::remove` of the last member already rejects.
                return Err(FsError::DataLoss(id));
            }
        }
        let names: Vec<String> = self
            .meta_home
            .iter()
            .filter(|(_, &home)| home == leaving)
            .map(|(n, _)| n.clone())
            .collect();
        for name in names {
            let key = self.files[&name].key;
            let new_home = self.ring.owner_of(key)?.id;
            self.meta_home.insert(name, new_home);
        }
        Ok(plan)
    }

    /// Remove a failed node and compute the re-replication plan: every
    /// block that lost a replica gets a copy from a surviving holder to
    /// the take-over server (the failed server's successor — or
    /// predecessor if the successor already holds one). Metadata homes on
    /// the failed server also move to the new owner of their key.
    ///
    /// Returns the copies to perform. The control-plane state is updated
    /// immediately; callers charge the copy costs to the simulator or
    /// perform the actual copies in the live executor.
    pub fn fail_node(&mut self, failed: NodeId) -> Result<Vec<RecoveryCopy>, FsError> {
        self.ring.remove(failed)?;
        self.node_bytes.remove(&failed);
        let mut plan = Vec::new();
        let block_ids: Vec<BlockId> = self.replicas.keys().copied().collect();
        for id in block_ids {
            let holders = self.replicas.get_mut(&id).expect("key just listed");
            let Some(pos) = holders.iter().position(|&h| h == failed) else {
                continue;
            };
            holders.remove(pos);
            if holders.is_empty() {
                return Err(FsError::DataLoss(id));
            }
            let bytes = self.block_sizes[&id];
            // Recompute the ideal replica set under the new membership and
            // restore any missing holder.
            let key = {
                // Block key must be recomputed from the stored metadata.
                let meta = self
                    .files
                    .values()
                    .find(|m| m.key == id.file)
                    .expect("block belongs to a known file");
                meta.blocks[id.index as usize].key
            };
            let ideal = self.ring.replica_set(key, self.cfg.replicas)?;
            let missing: Vec<NodeId> =
                ideal.iter().copied().filter(|n| !holders.contains(n)).collect();
            for target in missing {
                let source = holders[0];
                holders.push(target);
                *self.node_bytes.entry(target).or_insert(0) += bytes;
                plan.push(RecoveryCopy { block: id, bytes, from: source, to: target });
            }
        }
        // Metadata homes: move records owned by the failed node.
        let names: Vec<String> = self
            .meta_home
            .iter()
            .filter(|(_, &home)| home == failed)
            .map(|(n, _)| n.clone())
            .collect();
        for name in names {
            let key = self.files[&name].key;
            let new_home = self.ring.owner_of(key)?.id;
            self.meta_home.insert(name, new_home);
        }
        Ok(plan)
    }

    /// All files currently stored.
    pub fn file_names(&self) -> Vec<&str> {
        self.files.keys().map(|s| s.as_str()).collect()
    }

    /// Total number of stored blocks.
    pub fn num_blocks(&self) -> usize {
        self.replicas.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_util::{GB, MB};

    fn fs_n(n: usize) -> DhtFs {
        DhtFs::new(Ring::with_servers(n, "srv"), DhtFsConfig { block_size: 128 * MB, replicas: 2 })
    }

    #[test]
    fn upload_places_blocks_with_replicas() {
        let mut fs = fs_n(8);
        let meta = fs.upload("data.txt", "alice", GB).unwrap();
        assert_eq!(meta.num_blocks(), 8);
        let ids: Vec<BlockId> = meta.blocks.iter().map(|b| b.id).collect();
        for id in ids {
            let holders = fs.block_holders(id).unwrap();
            assert_eq!(holders.len(), 3, "owner + 2 replicas");
            let mut uniq = holders.to_vec();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), 3);
        }
        assert_eq!(fs.num_blocks(), 8);
    }

    #[test]
    fn upload_duplicate_fails() {
        let mut fs = fs_n(4);
        fs.upload("f", "u", MB).unwrap();
        assert!(matches!(fs.upload("f", "u", MB), Err(FsError::FileExists(_))));
    }

    #[test]
    fn permission_checked_at_open() {
        let mut fs = fs_n(4);
        fs.upload("private", "alice", MB).unwrap();
        assert!(fs.open("private", "alice").is_ok());
        assert!(matches!(
            fs.open("private", "mallory"),
            Err(FsError::PermissionDenied { .. })
        ));
        assert!(matches!(fs.open("missing", "alice"), Err(FsError::FileNotFound(_))));
    }

    #[test]
    fn blocks_spread_across_nodes() {
        let mut fs = fs_n(16);
        fs.upload("big", "u", 16 * GB).unwrap(); // 128 blocks
        let counts = fs.bytes_per_node();
        let holders_with_data = counts.iter().filter(|(_, b)| *b > 0).count();
        // With 128 blocks × 3 replicas over 16 nodes, every node holds data.
        assert_eq!(holders_with_data, 16);
        let total: u64 = counts.iter().map(|(_, b)| b).sum();
        assert_eq!(total, 3 * 16 * GB);
    }

    #[test]
    fn nearest_replica_prefers_local() {
        let mut fs = fs_n(8);
        let meta = fs.upload("f", "u", 256 * MB).unwrap();
        let id = meta.blocks[0].id;
        let holders = fs.block_holders(id).unwrap().to_vec();
        assert_eq!(fs.nearest_replica(id, holders[1]).unwrap(), holders[1]);
        assert_eq!(fs.nearest_replica(id, holders[2]).unwrap(), holders[2]);
        // A non-holder reads from the primary.
        let outsider = fs.ring().node_ids().into_iter().find(|n| !holders.contains(n)).unwrap();
        assert_eq!(fs.nearest_replica(id, outsider).unwrap(), holders[0]);
    }

    #[test]
    fn failure_recovery_restores_replication() {
        let mut fs = fs_n(8);
        let meta = fs.upload("f", "u", 2 * GB).unwrap();
        let ids: Vec<BlockId> = meta.blocks.iter().map(|b| b.id).collect();
        // Fail a node that holds at least one replica.
        let victim = fs.block_holders(ids[0]).unwrap()[0];
        let plan = fs.fail_node(victim).unwrap();
        assert!(!plan.is_empty(), "victim held replicas, so recovery must copy");
        for id in ids {
            let holders = fs.block_holders(id).unwrap();
            assert_eq!(holders.len(), 3, "replication restored for {id:?}");
            assert!(!holders.contains(&victim));
        }
        // Copies never originate from or target the failed node.
        for c in &plan {
            assert_ne!(c.from, victim);
            assert_ne!(c.to, victim);
            assert!(c.bytes > 0);
        }
    }

    #[test]
    fn metadata_home_moves_on_failure() {
        let mut fs = fs_n(8);
        fs.upload("f1", "u", MB).unwrap();
        let home = fs.metadata_home("f1").unwrap();
        fs.fail_node(home).unwrap();
        let new_home = fs.metadata_home("f1").unwrap();
        assert_ne!(new_home, home);
        assert!(fs.ring().contains(new_home));
    }

    #[test]
    fn join_plan_pulls_only_the_joiners_arc() {
        let mut fs = fs_n(6);
        let meta = fs.upload("f", "u", 4 * GB).unwrap();
        let ids: Vec<BlockId> = meta.blocks.iter().map(|b| b.id).collect();
        let joiner = NodeId(100);
        fs.join(eclipse_ring::ServerInfo::from_name(joiner, "srv-joiner")).unwrap();
        let plan = fs.join_plan(joiner).unwrap();
        // Every planned pull targets the joiner, sources a live holder,
        // and the block's new ideal set really includes the joiner.
        for c in &plan {
            assert_eq!(c.to, joiner);
            assert!(fs.block_holders(c.block).unwrap().contains(&c.from));
            assert!(c.bytes > 0);
        }
        // The plan is not applied until the caller records transfers.
        for id in &ids {
            assert!(!fs.block_holders(*id).unwrap().contains(&joiner));
        }
        for c in &plan {
            fs.add_replica(c.block, joiner).unwrap();
            assert!(fs.block_holders(c.block).unwrap().contains(&joiner));
        }
        // A second plan is now empty: the joiner owes nothing.
        assert!(fs.join_plan(joiner).unwrap().is_empty());
    }

    #[test]
    fn leave_node_hands_off_from_the_leaver() {
        let mut fs = fs_n(8);
        let meta = fs.upload("f", "u", 2 * GB).unwrap();
        let ids: Vec<BlockId> = meta.blocks.iter().map(|b| b.id).collect();
        let leaver = fs.block_holders(ids[0]).unwrap()[0];
        let plan = fs.leave_node(leaver).unwrap();
        assert!(!plan.is_empty(), "the leaver held replicas");
        for c in &plan {
            assert_eq!(c.from, leaver, "graceful handoff sources from the leaver");
            assert_ne!(c.to, leaver);
        }
        for id in ids {
            let holders = fs.block_holders(id).unwrap();
            assert_eq!(holders.len(), 3, "replication restored for {id:?}");
            assert!(!holders.contains(&leaver));
        }
        assert!(!fs.ring().contains(leaver));
        assert_eq!(fs.bytes_on(leaver), 0);
    }

    #[test]
    fn leave_of_sole_holder_is_a_handoff_not_a_loss() {
        // replicas = 0: every block has exactly one holder. A graceful
        // leave must still succeed, sourcing from the leaver.
        let mut fs = DhtFs::new(
            Ring::with_servers(4, "s"),
            DhtFsConfig { block_size: MB, replicas: 0 },
        );
        let meta = fs.upload("f", "u", 8 * MB).unwrap();
        let ids: Vec<BlockId> = meta.blocks.iter().map(|b| b.id).collect();
        let leaver = fs.block_holders(ids[0]).unwrap()[0];
        let plan = fs.leave_node(leaver).unwrap();
        assert!(plan.iter().all(|c| c.from == leaver));
        for id in ids {
            let holders = fs.block_holders(id).unwrap();
            assert!(!holders.is_empty(), "no block may be orphaned by a leave");
            assert!(!holders.contains(&leaver));
        }
    }

    #[test]
    fn metadata_home_moves_on_leave_and_join() {
        let mut fs = fs_n(8);
        fs.upload("f1", "u", MB).unwrap();
        let home = fs.metadata_home("f1").unwrap();
        fs.leave_node(home).unwrap();
        let new_home = fs.metadata_home("f1").unwrap();
        assert_ne!(new_home, home);
        assert!(fs.ring().contains(new_home));
    }

    #[test]
    fn metadata_owner_matches_ring() {
        let fs = fs_n(6);
        let owner = fs.metadata_owner("anyfile").unwrap();
        assert_eq!(owner, fs.ring().owner_of(HashKey::of_name("anyfile")).unwrap().id);
    }

    #[test]
    fn replicas_clamped_on_tiny_ring() {
        let mut fs = DhtFs::new(
            Ring::with_servers(2, "s"),
            DhtFsConfig { block_size: MB, replicas: 2 },
        );
        let meta = fs.upload("f", "u", 2 * MB).unwrap();
        let id = meta.blocks[0].id;
        assert_eq!(fs.block_holders(id).unwrap().len(), 2, "only 2 nodes exist");
    }
}
