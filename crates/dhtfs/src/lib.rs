//! # eclipse-dhtfs
//!
//! EclipseMR's decentralized DHT file system (the paper's inner ring):
//! files are partitioned into fixed-size blocks placed by consistent
//! hashing, metadata records live on the server owning the file-name
//! hash, and everything is replicated on the ring predecessor and
//! successor. Includes the HDFS control-plane model used as the Fig. 5
//! comparison baseline and an in-memory payload store for the live
//! executor.

pub mod fs;
pub mod hdfs;
pub mod intermediate;
pub mod meta;
pub mod store;

pub use fs::{DhtFs, DhtFsConfig, FsError, RecoveryCopy};
pub use intermediate::{IntermediateConfig, IntermediateStore, SegmentId};
pub use hdfs::{HdfsFs, HdfsPlacement, NameNodeConfig};
pub use meta::{BlockId, BlockInfo, FileMetadata};
pub use store::BlockStore;
