//! HDFS control-plane model — the comparison file system for Fig. 5.
//!
//! Differences from the DHT FS that the paper's evaluation exercises:
//!
//! * **Central NameNode.** Every open and every block-location lookup is
//!   a round trip to one server whose service capacity is finite; under
//!   concurrent jobs it saturates ("the IO throughput of HDFS degrades at
//!   a much faster rate than the DHT file system", §III-A).
//! * **Writer-local placement.** The first replica of each block lands on
//!   the writing client's node (classic HDFS policy), the remaining
//!   replicas on other nodes — this is exactly the input-block skew
//!   source the paper attributes to Hadoop (§I, §II-E).

use crate::meta::{BlockId, FileMetadata};
use eclipse_ring::NodeId;
use std::collections::HashMap;

/// Where HDFS places block primaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HdfsPlacement {
    /// All primaries on the writer's node (default HDFS behaviour for a
    /// single uploading client; produces block-level skew).
    WriterLocal(NodeId),
    /// Primaries rotate over the nodes (a well-balanced ingest, e.g.
    /// distcp from many clients).
    RoundRobin,
}

/// NameNode cost constants.
#[derive(Clone, Copy, Debug)]
pub struct NameNodeConfig {
    /// Service time per metadata operation, seconds. The NameNode is a
    /// serial resource: concurrent lookups queue.
    pub op_service_time: f64,
    /// Which node hosts the NameNode.
    pub host: NodeId,
}

impl Default for NameNodeConfig {
    fn default() -> Self {
        NameNodeConfig { op_service_time: 0.002, host: NodeId(0) }
    }
}

/// HDFS control plane.
#[derive(Clone, Debug)]
pub struct HdfsFs {
    nodes: usize,
    replicas: usize,
    namenode: NameNodeConfig,
    files: HashMap<String, FileMetadata>,
    locations: HashMap<BlockId, Vec<NodeId>>,
    /// Count of NameNode metadata operations (lookup load).
    namenode_ops: u64,
    rr_cursor: usize,
}

impl HdfsFs {
    pub fn new(nodes: usize, replicas: usize, namenode: NameNodeConfig) -> HdfsFs {
        assert!(nodes > 0);
        HdfsFs {
            nodes,
            replicas,
            namenode,
            files: HashMap::new(),
            locations: HashMap::new(),
            namenode_ops: 0,
            rr_cursor: 0,
        }
    }

    pub fn namenode_config(&self) -> &NameNodeConfig {
        &self.namenode
    }

    pub fn namenode_ops(&self) -> u64 {
        self.namenode_ops
    }

    /// Upload a file under the given placement policy.
    pub fn upload(
        &mut self,
        name: &str,
        owner: &str,
        size: u64,
        block_size: u64,
        placement: HdfsPlacement,
    ) -> &FileMetadata {
        assert!(!self.files.contains_key(name), "file exists: {name}");
        let meta = FileMetadata::partition(name, owner, size, block_size);
        self.namenode_ops += 1 + meta.blocks.len() as u64; // create + addBlock per block
        for b in &meta.blocks {
            let primary = match placement {
                HdfsPlacement::WriterLocal(w) => w,
                HdfsPlacement::RoundRobin => {
                    let p = NodeId((self.rr_cursor % self.nodes) as u32);
                    self.rr_cursor += 1;
                    p
                }
            };
            let mut holders = vec![primary];
            // Remaining replicas: deterministic spread derived from the
            // block key (stand-in for HDFS's random rack-aware choice).
            let mut probe = b.key.0;
            while holders.len() < (self.replicas + 1).min(self.nodes) {
                probe = probe.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let cand = NodeId((probe % self.nodes as u64) as u32);
                if !holders.contains(&cand) {
                    holders.push(cand);
                }
            }
            self.locations.insert(b.id, holders);
        }
        self.files.insert(name.to_string(), meta);
        &self.files[name]
    }

    /// Metadata lookup — one NameNode round trip.
    pub fn open(&mut self, name: &str) -> Option<&FileMetadata> {
        self.namenode_ops += 1;
        self.files.get(name)
    }

    /// Block locations — one NameNode round trip per call (getBlockLocations).
    pub fn block_locations(&mut self, id: BlockId) -> Option<&[NodeId]> {
        self.namenode_ops += 1;
        self.locations.get(&id).map(|v| v.as_slice())
    }

    /// Locations without charging a NameNode op (already-cached client
    /// handles).
    pub fn block_locations_cached(&self, id: BlockId) -> Option<&[NodeId]> {
        self.locations.get(&id).map(|v| v.as_slice())
    }

    /// Per-node primary-block counts — the skew the paper's LAF fix
    /// targets.
    pub fn primary_blocks_per_node(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.nodes];
        for holders in self.locations.values() {
            counts[holders[0].index()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_util::{GB, MB};

    #[test]
    fn writer_local_placement_skews_primaries() {
        let mut fs = HdfsFs::new(8, 2, NameNodeConfig::default());
        fs.upload("f", "u", GB, 128 * MB, HdfsPlacement::WriterLocal(NodeId(3)));
        let counts = fs.primary_blocks_per_node();
        assert_eq!(counts[3], 8, "all primaries on the writer");
        assert_eq!(counts.iter().sum::<u64>(), 8);
    }

    #[test]
    fn round_robin_placement_balances_primaries() {
        let mut fs = HdfsFs::new(8, 2, NameNodeConfig::default());
        fs.upload("f", "u", GB, 128 * MB, HdfsPlacement::RoundRobin);
        let counts = fs.primary_blocks_per_node();
        assert!(counts.iter().all(|&c| c == 1), "{counts:?}");
    }

    #[test]
    fn replica_sets_distinct() {
        let mut fs = HdfsFs::new(10, 2, NameNodeConfig::default());
        let meta = fs.upload("f", "u", 2 * GB, 128 * MB, HdfsPlacement::RoundRobin).clone();
        for b in &meta.blocks {
            let locs = fs.block_locations_cached(b.id).unwrap();
            assert_eq!(locs.len(), 3);
            let mut uniq = locs.to_vec();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), 3);
        }
    }

    #[test]
    fn namenode_ops_accumulate() {
        let mut fs = HdfsFs::new(4, 2, NameNodeConfig::default());
        let before = fs.namenode_ops();
        let meta = fs.upload("f", "u", 256 * MB, 128 * MB, HdfsPlacement::RoundRobin).clone();
        assert_eq!(fs.namenode_ops(), before + 3, "create + 2 addBlock");
        fs.open("f");
        fs.block_locations(meta.blocks[0].id);
        assert_eq!(fs.namenode_ops(), before + 5);
        // Cached lookups are free.
        fs.block_locations_cached(meta.blocks[0].id);
        assert_eq!(fs.namenode_ops(), before + 5);
    }

    #[test]
    fn replicas_clamped_to_cluster() {
        let mut fs = HdfsFs::new(2, 2, NameNodeConfig::default());
        let meta = fs.upload("f", "u", 128 * MB, 128 * MB, HdfsPlacement::RoundRobin).clone();
        assert_eq!(fs.block_locations_cached(meta.blocks[0].id).unwrap().len(), 2);
    }
}
