//! In-memory block payload store for the live executor.
//!
//! Each virtual node owns one shard; the live executor writes real block
//! payloads here ("local disk" contents). `bytes::Bytes` keeps cross-node
//! reads zero-copy. Thread-safe: the live executor runs one thread per
//! virtual node, and every node's shard sits behind its *own* `RwLock`,
//! so node 3 writing a spill never serializes node 5's block reads. The
//! outer lock guards only the shard directory (a `Vec` indexed by dense
//! node id) and is write-locked solely to grow it — steady-state traffic
//! takes it in read mode, clones the shard's `Arc`, and drops it before
//! touching any payload.

use crate::meta::BlockId;
use bytes::Bytes;
use eclipse_ring::NodeId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

type Shard = Arc<RwLock<HashMap<BlockId, Bytes>>>;

/// Payload store for every node in a live cluster.
#[derive(Debug, Default)]
pub struct BlockStore {
    /// One shard per node, indexed by `NodeId::index()`. Grows on first
    /// write to a new node; a missing slot means "holds nothing".
    shards: RwLock<Vec<Shard>>,
}

impl BlockStore {
    pub fn new() -> BlockStore {
        BlockStore::default()
    }

    /// A node's shard, if it has ever been written to.
    fn shard(&self, node: NodeId) -> Option<Shard> {
        self.shards.read().get(node.index()).cloned()
    }

    /// A node's shard, creating it (and any gap below it) on demand.
    fn shard_mut(&self, node: NodeId) -> Shard {
        if let Some(s) = self.shard(node) {
            return s;
        }
        let mut dir = self.shards.write();
        while dir.len() <= node.index() {
            dir.push(Arc::new(RwLock::new(HashMap::new())));
        }
        Arc::clone(&dir[node.index()])
    }

    /// Write a block payload to `node`'s shard (primary or replica).
    pub fn put(&self, node: NodeId, id: BlockId, data: Bytes) {
        self.shard_mut(node).write().insert(id, data);
    }

    /// Read a block from `node`'s shard; `None` if that node holds no
    /// copy.
    pub fn get(&self, node: NodeId, id: BlockId) -> Option<Bytes> {
        self.shard(node)?.read().get(&id).cloned()
    }

    /// Does `node` hold block `id`?
    pub fn holds(&self, node: NodeId, id: BlockId) -> bool {
        self.shard(node).is_some_and(|s| s.read().contains_key(&id))
    }

    /// Drop every payload on `node` (crash simulation).
    pub fn wipe_node(&self, node: NodeId) {
        if let Some(s) = self.shard(node) {
            s.write().clear();
        }
    }

    /// Copy a block between shards (recovery). Returns false when the
    /// source copy is missing. Takes the two shard locks one at a time.
    pub fn copy(&self, id: BlockId, from: NodeId, to: NodeId) -> bool {
        let data = match self.get(from, id) {
            Some(d) => d,
            None => return false,
        };
        self.put(to, id, data);
        true
    }

    /// Every block id a node currently holds a copy of (sorted, so
    /// callers get a deterministic view). The recovery property tests
    /// use this to pin `recovered_blocks` to the victim's holdings.
    pub fn blocks_on(&self, node: NodeId) -> Vec<BlockId> {
        let mut ids: Vec<BlockId> = self
            .shard(node)
            .map(|s| s.read().keys().copied().collect())
            .unwrap_or_default();
        ids.sort();
        ids
    }

    /// Bytes stored on a node.
    pub fn bytes_on(&self, node: NodeId) -> u64 {
        self.shard(node)
            .map(|s| s.read().values().map(|b| b.len() as u64).sum())
            .unwrap_or(0)
    }

    /// Number of block copies stored cluster-wide.
    pub fn total_copies(&self) -> usize {
        self.shards.read().iter().map(|s| s.read().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_util::HashKey;

    fn bid(i: u64) -> BlockId {
        BlockId { file: HashKey(42), index: i }
    }

    #[test]
    fn put_get_roundtrip() {
        let store = BlockStore::new();
        store.put(NodeId(0), bid(0), Bytes::from_static(b"hello"));
        assert_eq!(store.get(NodeId(0), bid(0)).unwrap(), Bytes::from_static(b"hello"));
        assert!(store.get(NodeId(1), bid(0)).is_none());
        assert!(store.get(NodeId(0), bid(1)).is_none());
        assert!(store.holds(NodeId(0), bid(0)));
    }

    #[test]
    fn copy_between_nodes() {
        let store = BlockStore::new();
        store.put(NodeId(0), bid(7), Bytes::from_static(b"payload"));
        assert!(store.copy(bid(7), NodeId(0), NodeId(3)));
        assert!(store.holds(NodeId(3), bid(7)));
        assert!(!store.copy(bid(9), NodeId(0), NodeId(3)), "missing source");
    }

    #[test]
    fn blocks_on_lists_holdings() {
        let store = BlockStore::new();
        store.put(NodeId(1), bid(3), Bytes::from_static(b"a"));
        store.put(NodeId(1), bid(1), Bytes::from_static(b"b"));
        assert_eq!(store.blocks_on(NodeId(1)), vec![bid(1), bid(3)]);
        assert!(store.blocks_on(NodeId(9)).is_empty());
    }

    #[test]
    fn wipe_simulates_crash() {
        let store = BlockStore::new();
        store.put(NodeId(2), bid(0), Bytes::from_static(b"x"));
        store.put(NodeId(2), bid(1), Bytes::from_static(b"y"));
        assert_eq!(store.bytes_on(NodeId(2)), 2);
        store.wipe_node(NodeId(2));
        assert_eq!(store.bytes_on(NodeId(2)), 0);
        assert_eq!(store.total_copies(), 0);
    }

    #[test]
    fn sparse_node_ids_work() {
        // Writing to a high node id grows the directory; the gap nodes
        // hold nothing.
        let store = BlockStore::new();
        store.put(NodeId(5), bid(0), Bytes::from_static(b"z"));
        assert!(store.holds(NodeId(5), bid(0)));
        for i in 0..5u32 {
            assert!(!store.holds(NodeId(i), bid(0)));
            assert_eq!(store.bytes_on(NodeId(i)), 0);
        }
        assert_eq!(store.total_copies(), 1);
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let store = Arc::new(BlockStore::new());
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let s = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    s.put(NodeId(t), bid(i), Bytes::from(vec![t as u8; 16]));
                    assert!(s.holds(NodeId(t), bid(i)));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.total_copies(), 800);
    }
}
