//! File metadata: name, owner, size and per-block hash keys.
//!
//! As in the paper (§II-A): "we store metadata about a file including
//! file name, owner, file size, and partitioning information in a
//! decentralized manner" — the metadata record lives on the server whose
//! DHT-FS range covers the *file name's* hash key, while each block lives
//! on the server covering that *block's* hash key.

use eclipse_util::{num_blocks, HashKey};

/// Identifies one block of one file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BlockId {
    /// Hash key of the file name.
    pub file: HashKey,
    /// Block index within the file.
    pub index: u64,
}

/// Descriptor of one fixed-size block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockInfo {
    pub id: BlockId,
    /// Ring placement key: `HashKey::of_block(file_name, index)`.
    pub key: HashKey,
    /// Bytes in this block (only the final block may be short).
    pub size: u64,
}

/// Decentralized file metadata record.
#[derive(Clone, Debug, PartialEq)]
pub struct FileMetadata {
    pub name: String,
    /// Hash key of the file name — also the metadata placement key.
    pub key: HashKey,
    /// Owning user (access-permission subject; checked on open).
    pub owner: String,
    pub size: u64,
    pub block_size: u64,
    pub blocks: Vec<BlockInfo>,
}

impl FileMetadata {
    /// Partition a file of `size` bytes into `block_size` blocks and
    /// compute each block's ring key.
    ///
    /// # Panics
    /// Panics if `block_size == 0`.
    pub fn partition(name: &str, owner: &str, size: u64, block_size: u64) -> FileMetadata {
        assert!(block_size > 0, "block size must be positive");
        let key = HashKey::of_name(name);
        let n = num_blocks(size, block_size);
        let mut blocks = Vec::with_capacity(n as usize);
        for index in 0..n {
            let remaining = size - index * block_size;
            blocks.push(BlockInfo {
                id: BlockId { file: key, index },
                key: HashKey::of_block(name, index),
                size: remaining.min(block_size),
            });
        }
        FileMetadata {
            name: name.to_string(),
            key,
            owner: owner.to_string(),
            size,
            block_size,
            blocks,
        }
    }

    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_util::{DEFAULT_BLOCK_SIZE, GB, MB};

    #[test]
    fn partition_block_math() {
        let m = FileMetadata::partition("f", "alice", 300 * MB, 128 * MB);
        assert_eq!(m.num_blocks(), 3);
        assert_eq!(m.blocks[0].size, 128 * MB);
        assert_eq!(m.blocks[1].size, 128 * MB);
        assert_eq!(m.blocks[2].size, 44 * MB);
        assert_eq!(m.blocks[2].id.index, 2);
        let total: u64 = m.blocks.iter().map(|b| b.size).sum();
        assert_eq!(total, 300 * MB);
    }

    #[test]
    fn empty_file_has_no_blocks() {
        let m = FileMetadata::partition("empty", "bob", 0, DEFAULT_BLOCK_SIZE);
        assert_eq!(m.num_blocks(), 0);
        assert_eq!(m.size, 0);
    }

    #[test]
    fn paper_dataset_partitions_to_2000_blocks() {
        let m = FileMetadata::partition("hibench-text", "hibench", 250 * GB, DEFAULT_BLOCK_SIZE);
        assert_eq!(m.num_blocks(), 2000);
    }

    #[test]
    fn block_keys_differ_from_file_key() {
        let m = FileMetadata::partition("f.dat", "u", 256 * MB, 128 * MB);
        assert_ne!(m.blocks[0].key, m.key);
        assert_ne!(m.blocks[0].key, m.blocks[1].key);
    }

    #[test]
    fn metadata_key_is_name_hash() {
        let m = FileMetadata::partition("some/file", "u", 1, 1);
        assert_eq!(m.key, HashKey::of_name("some/file"));
    }
}
