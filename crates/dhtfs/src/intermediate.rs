//! Persistent intermediate-result store (paper §II-C).
//!
//! EclipseMR stores map-task intermediate results **on the reducer side**
//! in the DHT file system so failed tasks can restart and later jobs can
//! reuse them: "we store the intermediate results in persistent file
//! systems as in Hadoop ... The stored intermediate results are
//! invalidated by time-to-live (TTL) which can be set by applications,
//! and they are not replicated by default."
//!
//! This module is that store: spill segments keyed by
//! (job, map task, partition), placed on the server owning the
//! partition's hash key, TTL-invalidated, unreplicated by default with an
//! opt-in replication knob.

use eclipse_ring::{NodeId, Ring, RingError};
use eclipse_util::HashKey;
use std::collections::BTreeMap;

/// Identity of one spill segment.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SegmentId {
    /// Producing job.
    pub job: u64,
    /// Producing map task index.
    pub map_task: u64,
    /// Reduce partition the segment belongs to.
    pub partition: u32,
}

impl SegmentId {
    /// Ring placement key: reducer partitions own equal slices of the
    /// ring, so the partition index determines the key (this is what
    /// lets reduce tasks be scheduled "where the intermediate results
    /// are stored" before the map phase even finishes).
    pub fn hash_key(&self, partitions: u32) -> HashKey {
        let p = self.partition.min(partitions.saturating_sub(1));
        HashKey::from_unit((p as f64 + 0.5) / partitions.max(1) as f64)
    }
}

/// One stored segment's metadata.
#[derive(Clone, Debug)]
struct Segment {
    bytes: u64,
    holders: Vec<NodeId>,
    /// Absolute expiry (seconds); `None` = keep until invalidated.
    expires: Option<f64>,
}

/// Configuration for the intermediate store.
#[derive(Clone, Copy, Debug)]
pub struct IntermediateConfig {
    /// Reduce partitions (fixes the key layout).
    pub partitions: u32,
    /// Extra replicas per segment. The paper's default is 0 —
    /// intermediate results "are not replicated by default".
    pub replicas: usize,
    /// Default TTL seconds applied when the producer does not set one.
    pub default_ttl: Option<f64>,
}

impl Default for IntermediateConfig {
    fn default() -> Self {
        IntermediateConfig { partitions: 64, replicas: 0, default_ttl: None }
    }
}

/// The reducer-side intermediate-result store.
#[derive(Clone, Debug)]
pub struct IntermediateStore {
    cfg: IntermediateConfig,
    ring: Ring,
    segments: BTreeMap<SegmentId, Segment>,
    /// Bytes stored per node.
    node_bytes: BTreeMap<NodeId, u64>,
    expired_count: u64,
}

impl IntermediateStore {
    pub fn new(ring: Ring, cfg: IntermediateConfig) -> IntermediateStore {
        assert!(cfg.partitions > 0);
        IntermediateStore {
            cfg,
            ring,
            segments: BTreeMap::new(),
            node_bytes: BTreeMap::new(),
            expired_count: 0,
        }
    }

    pub fn config(&self) -> &IntermediateConfig {
        &self.cfg
    }

    /// The server a partition's segments live on (and where its reduce
    /// task runs).
    pub fn partition_home(&self, partition: u32) -> Result<NodeId, RingError> {
        let key = SegmentId { job: 0, map_task: 0, partition }.hash_key(self.cfg.partitions);
        Ok(self.ring.owner_of(key)?.id)
    }

    /// Persist a spill segment at time `now`. Returns the holder nodes
    /// (owner first; more if replication is enabled).
    pub fn put(
        &mut self,
        id: SegmentId,
        bytes: u64,
        now: f64,
        ttl: Option<f64>,
    ) -> Result<Vec<NodeId>, RingError> {
        let key = id.hash_key(self.cfg.partitions);
        let holders = self.ring.replica_set(key, self.cfg.replicas)?;
        for &h in &holders {
            *self.node_bytes.entry(h).or_insert(0) += bytes;
        }
        let expires = ttl.or(self.cfg.default_ttl).map(|t| now + t);
        if let Some(old) = self
            .segments
            .insert(id, Segment { bytes, holders: holders.clone(), expires })
        {
            for &h in &old.holders {
                if let Some(b) = self.node_bytes.get_mut(&h) {
                    *b = b.saturating_sub(old.bytes);
                }
            }
        }
        Ok(holders)
    }

    /// Look up a segment at time `now`; expired segments read as absent
    /// (and are dropped).
    pub fn get(&mut self, id: SegmentId, now: f64) -> Option<(u64, Vec<NodeId>)> {
        let expired = match self.segments.get(&id) {
            None => return None,
            Some(s) => s.expires.is_some_and(|e| now >= e),
        };
        if expired {
            self.remove(id);
            self.expired_count += 1;
            return None;
        }
        let s = &self.segments[&id];
        Some((s.bytes, s.holders.clone()))
    }

    /// Every live segment of `partition` for `job` at time `now` — what a
    /// restarted reduce task re-reads instead of re-running its mappers.
    pub fn partition_segments(&mut self, job: u64, partition: u32, now: f64) -> Vec<SegmentId> {
        let ids: Vec<SegmentId> = self
            .segments
            .range(
                SegmentId { job, map_task: 0, partition: 0 }
                    ..SegmentId { job: job + 1, map_task: 0, partition: 0 },
            )
            .filter(|(id, _)| id.partition == partition)
            .map(|(id, _)| *id)
            .collect();
        ids.into_iter().filter(|&id| self.get(id, now).is_some()).collect()
    }

    /// Explicitly invalidate a segment (application-driven).
    pub fn remove(&mut self, id: SegmentId) -> bool {
        match self.segments.remove(&id) {
            None => false,
            Some(s) => {
                for &h in &s.holders {
                    if let Some(b) = self.node_bytes.get_mut(&h) {
                        *b = b.saturating_sub(s.bytes);
                    }
                }
                true
            }
        }
    }

    /// Drop every segment belonging to `job` (job cleanup).
    pub fn remove_job(&mut self, job: u64) -> usize {
        let ids: Vec<SegmentId> = self
            .segments
            .range(
                SegmentId { job, map_task: 0, partition: 0 }
                    ..SegmentId { job: job + 1, map_task: 0, partition: 0 },
            )
            .map(|(id, _)| *id)
            .collect();
        for id in &ids {
            self.remove(*id);
        }
        ids.len()
    }

    /// Purge expired segments at time `now`; returns the count.
    pub fn expire(&mut self, now: f64) -> usize {
        let dead: Vec<SegmentId> = self
            .segments
            .iter()
            .filter(|(_, s)| s.expires.is_some_and(|e| now >= e))
            .map(|(id, _)| *id)
            .collect();
        for id in &dead {
            self.remove(*id);
        }
        self.expired_count += dead.len() as u64;
        dead.len()
    }

    /// Unreplicated segments on a failed node are lost — the paper's
    /// stated trade-off ("they are not replicated by default"): the
    /// affected map tasks must re-run. Returns the lost segment ids.
    pub fn fail_node(&mut self, node: NodeId) -> Vec<SegmentId> {
        let mut lost = Vec::new();
        let ids: Vec<SegmentId> = self.segments.keys().copied().collect();
        for id in ids {
            let s = self.segments.get_mut(&id).expect("just listed");
            if let Some(pos) = s.holders.iter().position(|&h| h == node) {
                s.holders.remove(pos);
                if s.holders.is_empty() {
                    lost.push(id);
                }
            }
        }
        for id in &lost {
            self.segments.remove(id);
        }
        self.node_bytes.remove(&node);
        lost
    }

    pub fn bytes_on(&self, node: NodeId) -> u64 {
        self.node_bytes.get(&node).copied().unwrap_or(0)
    }

    pub fn len(&self) -> usize {
        self.segments.len()
    }

    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    pub fn expired_count(&self) -> u64 {
        self.expired_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_util::MB;

    fn store(replicas: usize) -> IntermediateStore {
        IntermediateStore::new(
            Ring::with_servers_evenly_spaced(8, "s"),
            IntermediateConfig { partitions: 16, replicas, default_ttl: None },
        )
    }

    fn seg(job: u64, map: u64, p: u32) -> SegmentId {
        SegmentId { job, map_task: map, partition: p }
    }

    #[test]
    fn put_get_roundtrip_and_placement() {
        let mut s = store(0);
        let holders = s.put(seg(1, 0, 3), 32 * MB, 0.0, None).unwrap();
        assert_eq!(holders.len(), 1, "unreplicated by default");
        assert_eq!(holders[0], s.partition_home(3).unwrap());
        let (bytes, hs) = s.get(seg(1, 0, 3), 10.0).unwrap();
        assert_eq!(bytes, 32 * MB);
        assert_eq!(hs, holders);
    }

    #[test]
    fn same_partition_same_home() {
        let mut s = store(0);
        let a = s.put(seg(1, 0, 5), MB, 0.0, None).unwrap();
        let b = s.put(seg(1, 7, 5), MB, 0.0, None).unwrap();
        let c = s.put(seg(2, 3, 5), MB, 0.0, None).unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c, "partition key is job-independent");
    }

    #[test]
    fn ttl_expiry() {
        let mut s = store(0);
        s.put(seg(1, 0, 0), MB, 0.0, Some(5.0)).unwrap();
        s.put(seg(1, 1, 0), MB, 0.0, None).unwrap();
        assert!(s.get(seg(1, 0, 0), 4.9).is_some());
        assert!(s.get(seg(1, 0, 0), 5.0).is_none(), "expired on read");
        assert_eq!(s.expire(100.0), 0, "already dropped; the other never expires");
        assert!(s.get(seg(1, 1, 0), 100.0).is_some());
        assert_eq!(s.expired_count(), 1);
    }

    #[test]
    fn default_ttl_applies() {
        let mut s = IntermediateStore::new(
            Ring::with_servers_evenly_spaced(4, "s"),
            IntermediateConfig { partitions: 4, replicas: 0, default_ttl: Some(10.0) },
        );
        s.put(seg(1, 0, 1), MB, 0.0, None).unwrap();
        assert!(s.get(seg(1, 0, 1), 9.0).is_some());
        assert!(s.get(seg(1, 0, 1), 11.0).is_none());
    }

    #[test]
    fn partition_segments_lists_live_only() {
        let mut s = store(0);
        for m in 0..5 {
            s.put(seg(7, m, 2), MB, 0.0, if m == 0 { Some(1.0) } else { None }).unwrap();
        }
        s.put(seg(7, 9, 3), MB, 0.0, None).unwrap(); // other partition
        s.put(seg(8, 0, 2), MB, 0.0, None).unwrap(); // other job
        let live = s.partition_segments(7, 2, 2.0);
        assert_eq!(live.len(), 4, "one expired, others excluded by job/partition");
        assert!(live.iter().all(|id| id.job == 7 && id.partition == 2));
    }

    #[test]
    fn job_cleanup() {
        let mut s = store(0);
        for m in 0..4 {
            s.put(seg(3, m, (m % 16) as u32), MB, 0.0, None).unwrap();
        }
        s.put(seg(4, 0, 0), MB, 0.0, None).unwrap();
        assert_eq!(s.remove_job(3), 4);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn unreplicated_segments_lost_on_failure() {
        let mut s = store(0);
        let holders = s.put(seg(1, 0, 6), MB, 0.0, None).unwrap();
        let lost = s.fail_node(holders[0]);
        assert_eq!(lost, vec![seg(1, 0, 6)]);
        assert!(s.get(seg(1, 0, 6), 0.0).is_none());
    }

    #[test]
    fn replicated_segments_survive_failure() {
        let mut s = store(2);
        let holders = s.put(seg(1, 0, 6), MB, 0.0, None).unwrap();
        assert_eq!(holders.len(), 3);
        let lost = s.fail_node(holders[0]);
        assert!(lost.is_empty());
        let (_, survivors) = s.get(seg(1, 0, 6), 0.0).unwrap();
        assert_eq!(survivors.len(), 2);
    }

    #[test]
    fn byte_accounting() {
        let mut s = store(0);
        let holders = s.put(seg(1, 0, 2), 10 * MB, 0.0, None).unwrap();
        assert_eq!(s.bytes_on(holders[0]), 10 * MB);
        // Overwrite shrinks accounting.
        s.put(seg(1, 0, 2), 4 * MB, 1.0, None).unwrap();
        assert_eq!(s.bytes_on(holders[0]), 4 * MB);
        s.remove(seg(1, 0, 2));
        assert_eq!(s.bytes_on(holders[0]), 0);
    }
}
