//! Per-server cache: one byte budget shared by the iCache and oCache
//! partitions, with per-partition statistics. Live-executor payloads
//! live *inside* the LRU slots (`LruCache<CacheKey, Bytes>`), so a
//! payload hit is a single hash lookup and eviction frees the bytes
//! with the index entry — no side table, no garbage-collection sweep.

use crate::entry::CacheKey;
use crate::lru::{CacheStats, LruCache};
use bytes::Bytes;

/// One worker server's in-memory cache.
#[derive(Clone, Debug)]
pub struct NodeCache {
    lru: LruCache<CacheKey, Bytes>,
    /// iCache lookup stats (input blocks).
    input_stats: CacheStats,
    /// oCache lookup stats (tagged outputs).
    output_stats: CacheStats,
}

impl NodeCache {
    pub fn new(capacity: u64) -> NodeCache {
        NodeCache {
            lru: LruCache::new(capacity),
            input_stats: CacheStats::default(),
            output_stats: CacheStats::default(),
        }
    }

    pub fn capacity(&self) -> u64 {
        self.lru.capacity()
    }

    pub fn used(&self) -> u64 {
        self.lru.used()
    }

    #[inline]
    fn stats_for(&mut self, key: &CacheKey) -> &mut CacheStats {
        if key.is_input() {
            &mut self.input_stats
        } else {
            &mut self.output_stats
        }
    }

    /// Look up an entry; returns its byte size on a hit.
    pub fn get(&mut self, key: &CacheKey, now: f64) -> Option<u64> {
        let hit = self.lru.get(key, now);
        let stats = self.stats_for(key);
        match hit {
            Some(b) => {
                stats.hits += 1;
                Some(b)
            }
            None => {
                stats.misses += 1;
                None
            }
        }
    }

    /// Look up and return the real payload (live executor path). One
    /// lookup serves the index and the payload; a metered-only entry
    /// hits the index but yields no bytes.
    pub fn get_payload(&mut self, key: &CacheKey, now: f64) -> Option<Bytes> {
        let hit = self.lru.get_value(key, now).map(|(_, payload)| payload.cloned());
        let stats = self.stats_for(key);
        match hit {
            Some(payload) => {
                stats.hits += 1;
                payload
            }
            None => {
                stats.misses += 1;
                None
            }
        }
    }

    /// Cache a metered entry (simulator path).
    pub fn put(&mut self, key: CacheKey, bytes: u64, now: f64, ttl: Option<f64>) -> bool {
        let ok = self.lru.put(key.clone(), bytes, now, ttl);
        if ok {
            self.stats_for(&key).insertions += 1;
        }
        ok
    }

    /// Cache a real payload (live executor path). The payload is stored
    /// in the LRU slot itself; eviction or invalidation drops it.
    pub fn put_payload(&mut self, key: CacheKey, data: Bytes, now: f64, ttl: Option<f64>) -> bool {
        self.put_payload_tenant(key, data, now, ttl, 0)
    }

    /// [`put_payload`](Self::put_payload) attributed to `tenant` for
    /// quota accounting (see [`LruCache::put_value_tenant`]).
    pub fn put_payload_tenant(
        &mut self,
        key: CacheKey,
        data: Bytes,
        now: f64,
        ttl: Option<f64>,
        tenant: u16,
    ) -> bool {
        let bytes = data.len() as u64;
        let ok = self.lru.put_value_tenant(key.clone(), Some(data), bytes, now, ttl, tenant);
        if ok {
            self.stats_for(&key).insertions += 1;
        }
        ok
    }

    /// [`put_payload_tenant`](Self::put_payload_tenant) for **pinned**
    /// entries — materialized epoch state that LRU pressure must never
    /// evict (see [`LruCache::put_pinned_tenant`]). Quota-aware: a pin
    /// that would bust the tenant's budget is rejected.
    pub fn put_payload_pinned(
        &mut self,
        key: CacheKey,
        data: Bytes,
        now: f64,
        ttl: Option<f64>,
        tenant: u16,
    ) -> bool {
        let bytes = data.len() as u64;
        let ok = self.lru.put_pinned_tenant(key.clone(), Some(data), bytes, now, ttl, tenant);
        if ok {
            self.stats_for(&key).insertions += 1;
        }
        ok
    }

    /// Return a pinned entry to normal LRU lifetime.
    pub fn unpin(&mut self, key: &CacheKey) -> bool {
        self.lru.unpin(key)
    }

    /// Resident bytes held by pinned entries.
    pub fn pinned_bytes(&self) -> u64 {
        self.lru.pinned_bytes()
    }

    /// Give `tenant` a byte budget within this cache (applies from the
    /// next insert).
    pub fn set_tenant_quota(&mut self, tenant: u16, bytes: u64) {
        self.lru.set_tenant_quota(tenant, bytes);
    }

    /// Resident bytes attributed to `tenant`.
    pub fn tenant_used(&self, tenant: u16) -> u64 {
        self.lru.tenant_used(tenant)
    }

    pub fn contains(&self, key: &CacheKey, now: f64) -> bool {
        self.lru.contains(key, now)
    }

    pub fn invalidate(&mut self, key: &CacheKey) -> Option<u64> {
        self.lru.invalidate(key)
    }

    /// Remove `key`, returning its payload when one is resident. No hit
    /// or miss is recorded — a handoff is bookkeeping, not a lookup.
    /// Metered (payload-less) entries are removed and yield `None`.
    pub fn take_payload(&mut self, key: &CacheKey) -> Option<Bytes> {
        self.lru.take(key).and_then(|(_, v)| v)
    }

    /// Evict everything (cold-cache experiment setup).
    pub fn clear(&mut self) {
        self.lru.clear();
    }

    /// Resident keys, no particular order.
    pub fn keys(&self) -> Vec<CacheKey> {
        self.lru.keys().cloned().collect()
    }

    /// iCache statistics (input-block lookups).
    pub fn input_stats(&self) -> CacheStats {
        self.input_stats
    }

    /// oCache statistics (tagged-output lookups).
    pub fn output_stats(&self) -> CacheStats {
        self.output_stats
    }

    /// Combined statistics from the underlying LRU.
    pub fn stats(&self) -> CacheStats {
        self.lru.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::OutputTag;
    use eclipse_util::HashKey;

    fn ik(v: u64) -> CacheKey {
        CacheKey::Input(HashKey(v))
    }
    fn ok_(tag: &str) -> CacheKey {
        CacheKey::Output(OutputTag::new("app", tag))
    }

    #[test]
    fn partitions_share_capacity() {
        let mut c = NodeCache::new(100);
        assert!(c.put(ik(1), 60, 0.0, None));
        assert!(c.put(ok_("t"), 60, 1.0, None)); // must evict the input entry
        assert!(!c.contains(&ik(1), 1.0));
        assert!(c.contains(&ok_("t"), 1.0));
        assert!(c.used() <= 100);
    }

    #[test]
    fn per_partition_stats() {
        let mut c = NodeCache::new(100);
        c.put(ik(1), 10, 0.0, None);
        c.get(&ik(1), 0.0);
        c.get(&ik(2), 0.0);
        c.get(&ok_("x"), 0.0);
        assert_eq!(c.input_stats().hits, 1);
        assert_eq!(c.input_stats().misses, 1);
        assert_eq!(c.output_stats().misses, 1);
        assert_eq!(c.output_stats().hits, 0);
    }

    #[test]
    fn payload_roundtrip() {
        let mut c = NodeCache::new(100);
        assert!(c.put_payload(ok_("r"), Bytes::from_static(b"result"), 0.0, None));
        assert_eq!(c.get_payload(&ok_("r"), 1.0).unwrap(), Bytes::from_static(b"result"));
        assert_eq!(c.get_payload(&ok_("zzz"), 1.0), None);
    }

    #[test]
    fn payload_dropped_with_eviction() {
        let mut c = NodeCache::new(10);
        c.put_payload(ok_("a"), Bytes::from(vec![0u8; 10]), 0.0, None);
        c.put_payload(ok_("b"), Bytes::from(vec![0u8; 10]), 1.0, None); // evicts a
        assert_eq!(c.get_payload(&ok_("a"), 2.0), None);
        assert!(c.get_payload(&ok_("b"), 2.0).is_some());
    }

    #[test]
    fn metered_entry_hits_index_without_payload() {
        let mut c = NodeCache::new(100);
        c.put(ik(7), 10, 0.0, None);
        // Index hit (counts in stats) but no payload bytes to return.
        assert_eq!(c.get_payload(&ik(7), 1.0), None);
        assert_eq!(c.input_stats().hits, 1);
        assert_eq!(c.input_stats().misses, 0);
    }

    #[test]
    fn payload_stats_match_metered_stats() {
        let mut c = NodeCache::new(100);
        c.put_payload(ok_("r"), Bytes::from_static(b"xyz"), 0.0, None);
        c.get_payload(&ok_("r"), 1.0);
        c.get_payload(&ok_("nope"), 1.0);
        assert_eq!(c.output_stats().hits, 1);
        assert_eq!(c.output_stats().misses, 1);
        assert_eq!(c.output_stats().insertions, 1);
    }

    #[test]
    fn ttl_applies_to_outputs() {
        let mut c = NodeCache::new(100);
        c.put(ok_("temp"), 5, 0.0, Some(10.0));
        assert!(c.get(&ok_("temp"), 9.0).is_some());
        assert!(c.get(&ok_("temp"), 11.0).is_none());
    }

    #[test]
    fn clear_resets_contents_not_stats() {
        let mut c = NodeCache::new(100);
        c.put(ik(1), 10, 0.0, None);
        c.get(&ik(1), 0.0);
        c.clear();
        assert!(!c.contains(&ik(1), 0.0));
        assert_eq!(c.input_stats().hits, 1, "stats survive clears");
        assert_eq!(c.used(), 0);
    }
}
