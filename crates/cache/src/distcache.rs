//! The cluster-wide cache layer (the paper's outer ring): per-node caches
//! addressed through a *range table* that the scheduler owns and adjusts.
//!
//! The scheduler's hash key ranges decide which server caches which keys;
//! they start aligned with the DHT file system and drift as the LAF
//! algorithm re-partitions (§II-B: "the hash key ranges of the
//! distributed in-memory cache layer can be misaligned with the hash key
//! ranges of the DHT file system"). When ranges move, entries may be
//! *misplaced*; [`DistributedCache::migrate_misplaced`] implements the
//! optional neighbor-migration pass (§II-E, disabled by default as in the
//! paper's experiments).
//!
//! # Locking
//!
//! Each node's cache is a [`ShardedNodeCache`]: N independently locked
//! shards partitioned by key hash, behind one `Arc` per node. The range
//! table sits behind a read-mostly `RwLock`. Every method takes `&self`;
//! a cache operation locks exactly one shard of one node for its
//! duration, so the live executor's node threads — and concurrent
//! requests *within* a node — proceed without serializing on a
//! cluster-wide or even node-wide lock. Methods never hold two shard
//! locks at once (migration moves entries in two steps), so there is no
//! lock-ordering hazard.
//!
//! The simulator builds with `shards_per_node = 1`, which reproduces the
//! unsharded cache's eviction sequence exactly (see [`crate::sharded`]).

use crate::entry::CacheKey;
use crate::lru::CacheStats;
use crate::sharded::ShardedNodeCache;
use eclipse_ring::{NodeId, Ring};
use eclipse_util::{HashKey, KeyRange};
use parking_lot::RwLock;
use std::sync::Arc;

/// Cluster-wide cache: one [`ShardedNodeCache`] per server plus the
/// shared range table.
#[derive(Debug)]
pub struct DistributedCache {
    nodes: RwLock<Vec<Arc<ShardedNodeCache>>>,
    /// (node, cache hash-key range), clockwise order. Tiles the ring.
    ranges: RwLock<Vec<(NodeId, KeyRange)>>,
    /// Shard count applied to every node cache (joiners included).
    shards_per_node: usize,
    /// Per-tenant per-node byte budgets, replayed onto joiners so a
    /// quota set before a membership change still binds the new node.
    tenant_quotas: RwLock<Vec<(u16, u64)>>,
}

impl Clone for DistributedCache {
    fn clone(&self) -> DistributedCache {
        let nodes = self.nodes.read().iter().map(|n| Arc::new((**n).clone())).collect();
        DistributedCache {
            nodes: RwLock::new(nodes),
            ranges: RwLock::new(self.ranges.read().clone()),
            shards_per_node: self.shards_per_node,
            tenant_quotas: RwLock::new(self.tenant_quotas.read().clone()),
        }
    }
}

impl DistributedCache {
    /// Build with `capacity_per_node` bytes per server and ranges aligned
    /// with the file-system ring (the initial state, and the permanent
    /// state under delay scheduling). One shard per node: the exact
    /// configuration the paper's simulator figures are generated with.
    pub fn new(ring: &Ring, capacity_per_node: u64) -> DistributedCache {
        DistributedCache::with_shards(ring, capacity_per_node, 1)
    }

    /// Build with `shards_per_node` lock shards inside every node cache
    /// (the live executor's configuration; see [`crate::sharded`]).
    pub fn with_shards(
        ring: &Ring,
        capacity_per_node: u64,
        shards_per_node: usize,
    ) -> DistributedCache {
        let nodes = (0..ring.len())
            .map(|_| Arc::new(ShardedNodeCache::new(capacity_per_node, shards_per_node)))
            .collect();
        DistributedCache {
            nodes: RwLock::new(nodes),
            ranges: RwLock::new(ring.ranges()),
            shards_per_node,
            tenant_quotas: RwLock::new(Vec::new()),
        }
    }

    /// Give `tenant` a per-node byte budget on every current node's
    /// cache — and on every future joiner's. Within a node the budget
    /// splits over shards exactly as the capacity does.
    pub fn set_tenant_quota(&self, tenant: u16, bytes_per_node: u64) {
        {
            let mut quotas = self.tenant_quotas.write();
            quotas.retain(|(t, _)| *t != tenant);
            quotas.push((tenant, bytes_per_node));
        }
        for node in self.nodes.read().iter() {
            node.set_tenant_quota(tenant, bytes_per_node);
        }
    }

    /// Resident bytes attributed to `tenant`, summed over all nodes.
    pub fn tenant_used(&self, tenant: u16) -> u64 {
        self.nodes.read().iter().map(|n| n.tenant_used(tenant)).sum()
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.read().len()
    }

    /// Lock shards inside each node cache.
    pub fn shards_per_node(&self) -> usize {
        self.shards_per_node
    }

    /// Snapshot of the current range table.
    pub fn ranges(&self) -> Vec<(NodeId, KeyRange)> {
        self.ranges.read().clone()
    }

    /// Admit a new server's cache. The caller must assign node ids
    /// densely (the new node's id must equal the previous node count) and
    /// follow up with [`set_ranges`](Self::set_ranges) so the ring
    /// includes the joiner.
    pub fn add_node(&self, capacity: u64) -> NodeId {
        let mut nodes = self.nodes.write();
        let id = NodeId(nodes.len() as u32);
        let cache = ShardedNodeCache::new(capacity, self.shards_per_node);
        for &(tenant, bytes) in self.tenant_quotas.read().iter() {
            cache.set_tenant_quota(tenant, bytes);
        }
        nodes.push(Arc::new(cache));
        id
    }

    /// Install a new range table (the LAF scheduler calls this after each
    /// re-partition). Must tile the ring over the same node set.
    pub fn set_ranges(&self, ranges: Vec<(NodeId, KeyRange)>) {
        assert!(!ranges.is_empty());
        *self.ranges.write() = ranges;
    }

    /// The server whose cache range covers `key`.
    pub fn home_of(&self, key: HashKey) -> NodeId {
        self.ranges
            .read()
            .iter()
            .find(|(_, r)| r.contains(key))
            .map(|(n, _)| *n)
            .unwrap_or_else(|| panic!("range table does not cover {key}"))
    }

    /// A node's cache. The `Arc` is cloned out so the caller holds no
    /// lock on the node list while working — every operation on the
    /// returned cache locks only the shard it touches.
    pub fn node(&self, id: NodeId) -> Arc<ShardedNodeCache> {
        Arc::clone(&self.nodes.read()[id.index()])
    }

    /// Run `f` against one node's cache. Locking happens per operation
    /// inside the [`ShardedNodeCache`], one shard at a time.
    pub fn with_node<R>(&self, id: NodeId, f: impl FnOnce(&ShardedNodeCache) -> R) -> R {
        f(&self.node(id))
    }

    /// Look up `key` on its home server.
    pub fn get_at_home(&self, key: &CacheKey, now: f64) -> Option<(NodeId, u64)> {
        let home = self.home_of(key.hash_key());
        self.with_node(home, |c| c.get(key, now)).map(|b| (home, b))
    }

    /// Insert at the home server.
    pub fn put_at_home(&self, key: CacheKey, bytes: u64, now: f64, ttl: Option<f64>) -> NodeId {
        let home = self.home_of(key.hash_key());
        self.with_node(home, |c| c.put(key, bytes, now, ttl));
        home
    }

    /// Aggregate statistics over all nodes.
    pub fn total_stats(&self) -> CacheStats {
        let mut agg = CacheStats::default();
        for node in self.nodes.read().iter() {
            agg.merge(&node.stats());
        }
        agg
    }

    /// Global hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        self.total_stats().hit_ratio()
    }

    /// Bytes cached per node (distribution check).
    pub fn used_per_node(&self) -> Vec<u64> {
        self.nodes.read().iter().map(|n| n.used()).collect()
    }

    /// Drop every entry cached on one server — the crash path: a failed
    /// node's iCache/oCache contents die with it, and the survivors must
    /// treat its keys as cold until re-read. Returns how many entries
    /// were invalidated (recovery telemetry).
    pub fn invalidate_node(&self, id: NodeId) -> usize {
        self.with_node(id, |c| {
            let dropped = c.keys().len();
            c.clear();
            dropped
        })
    }

    /// Empty every node's cache (the paper empties caches before each
    /// cold-cache run).
    pub fn clear_all(&self) {
        for node in self.nodes.read().iter() {
            node.clear();
        }
    }

    /// Migrate entries stranded by a range change to the neighbor that
    /// now owns them (§II-E's optional data-migration pass). Only
    /// immediate clockwise/counter-clockwise neighbors in the range table
    /// are checked, as in the paper. Returns (entries moved, bytes moved)
    /// so the caller can charge network cost.
    pub fn migrate_misplaced(&self, now: f64) -> (usize, u64) {
        let mut moved = 0usize;
        let mut moved_bytes = 0u64;
        let ranges = self.ranges();
        let n = ranges.len();
        for pos in 0..n {
            let (holder, range) = ranges[pos];
            let neighbors = [ranges[(pos + 1) % n].0, ranges[(pos + n - 1) % n].0];
            let misplaced: Vec<CacheKey> = self.with_node(holder, |c| {
                c.keys().into_iter().filter(|k| !range.contains(k.hash_key())).collect()
            });
            for key in misplaced {
                let target = self.home_of(key.hash_key());
                // Only neighbor moves, per the paper's option.
                if !neighbors.contains(&target) || target == holder {
                    continue;
                }
                // Two independent shard locks, taken one at a time.
                if let Some(bytes) = self.with_node(holder, |c| c.invalidate(&key)) {
                    self.with_node(target, |c| c.put(key, bytes, now, None));
                    moved += 1;
                    moved_bytes += bytes;
                }
            }
        }
        (moved, moved_bytes)
    }

    /// Drain entries stranded on `node` by a membership-driven range
    /// change: remove every resident entry whose home under the freshly
    /// installed range table is another node, and return the
    /// payload-carrying ones with their new home so the caller can ship
    /// them across the transport (the elastic `RangeHandoff` path).
    /// Metered, payload-less entries are removed and dropped — they are
    /// hints, re-creatable by a future miss. Unlike
    /// [`migrate_misplaced`](Self::migrate_misplaced) the move is not
    /// restricted to ring neighbors and never touches the target cache;
    /// delivery happens over the wire.
    pub fn drain_for_handoff(&self, node: NodeId) -> Vec<(CacheKey, bytes::Bytes, NodeId)> {
        let stranded: Vec<(CacheKey, NodeId)> = {
            let ranges = self.ranges.read();
            self.with_node(node, |c| {
                c.keys()
                    .into_iter()
                    .filter_map(|k| {
                        let home = ranges
                            .iter()
                            .find(|(_, r)| r.contains(k.hash_key()))
                            .map(|(n, _)| *n)?;
                        (home != node).then_some((k, home))
                    })
                    .collect()
            })
        };
        let mut out = Vec::new();
        for (key, home) in stranded {
            if let Some(payload) = self.with_node(node, |c| c.take_payload(&key)) {
                out.push((key, payload, home));
            }
        }
        out
    }

    /// Count entries resident on servers whose current range does not
    /// cover them (misplacement measurement, §II-E).
    pub fn misplaced_entries(&self) -> usize {
        self.ranges()
            .iter()
            .map(|(node, range)| {
                self.with_node(*node, |c| {
                    c.keys().into_iter().filter(|k| !range.contains(k.hash_key())).count()
                })
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_util::MB;

    fn cache_n(n: usize, cap: u64) -> (Ring, DistributedCache) {
        let ring = Ring::with_servers(n, "c");
        let cache = DistributedCache::new(&ring, cap);
        (ring, cache)
    }

    #[test]
    fn initial_ranges_align_with_ring() {
        let (ring, cache) = cache_n(6, MB);
        for probe in 0..100u64 {
            let k = HashKey::of_name(&format!("p{probe}"));
            assert_eq!(cache.home_of(k), ring.owner_of(k).unwrap().id);
        }
    }

    #[test]
    fn put_get_at_home() {
        let (_, cache) = cache_n(4, MB);
        let key = CacheKey::Input(HashKey::of_name("block-0"));
        let home = cache.put_at_home(key.clone(), 1000, 0.0, None);
        let (hit_node, bytes) = cache.get_at_home(&key, 1.0).unwrap();
        assert_eq!(hit_node, home);
        assert_eq!(bytes, 1000);
    }

    #[test]
    fn range_change_redirects_lookups() {
        let (_, cache) = cache_n(2, MB);
        let key = CacheKey::Input(HashKey(42));
        let old_home = cache.put_at_home(key.clone(), 10, 0.0, None);
        // Flip the two nodes' ranges.
        let flipped: Vec<(NodeId, KeyRange)> = {
            let r = cache.ranges();
            vec![(r[1].0, r[0].1), (r[0].0, r[1].1)]
        };
        cache.set_ranges(flipped);
        let new_home = cache.home_of(HashKey(42));
        assert_ne!(new_home, old_home);
        // Lookup now misses: the entry is stranded on the old home.
        assert!(cache.get_at_home(&key, 1.0).is_none());
        assert_eq!(cache.misplaced_entries(), 1);
    }

    #[test]
    fn migration_rescues_misplaced_entries() {
        let (_, cache) = cache_n(2, MB);
        let key = CacheKey::Input(HashKey(42));
        cache.put_at_home(key.clone(), 10, 0.0, None);
        let r = cache.ranges();
        cache.set_ranges(vec![(r[1].0, r[0].1), (r[0].0, r[1].1)]);
        let (moved, bytes) = cache.migrate_misplaced(1.0);
        assert_eq!(moved, 1);
        assert_eq!(bytes, 10);
        assert_eq!(cache.misplaced_entries(), 0);
        assert!(cache.get_at_home(&key, 2.0).is_some());
    }

    #[test]
    fn drain_for_handoff_extracts_stranded_payloads() {
        let (_, cache) = cache_n(2, MB);
        let key = CacheKey::Input(HashKey(42));
        let old_home = cache.put_at_home(key.clone(), 10, 0.0, None);
        cache.with_node(old_home, |c| {
            c.take_payload(&key);
            c.put_payload(key.clone(), bytes::Bytes::from_static(b"payload"), 0.0, None)
        });
        let r = cache.ranges();
        cache.set_ranges(vec![(r[1].0, r[0].1), (r[0].0, r[1].1)]);
        let new_home = cache.home_of(HashKey(42));
        let drained = cache.drain_for_handoff(old_home);
        assert_eq!(drained.len(), 1);
        let (k, payload, target) = &drained[0];
        assert_eq!(k, &key);
        assert_eq!(payload.as_ref(), b"payload");
        assert_eq!(*target, new_home);
        // The entry left the old home; metered entries are gone too.
        assert_eq!(cache.misplaced_entries(), 0);
        assert!(cache.drain_for_handoff(old_home).is_empty(), "idempotent");
    }

    #[test]
    fn aggregate_stats() {
        let (_, cache) = cache_n(3, MB);
        let k1 = CacheKey::Input(HashKey::of_name("a"));
        let k2 = CacheKey::Input(HashKey::of_name("b"));
        cache.put_at_home(k1.clone(), 5, 0.0, None);
        cache.get_at_home(&k1, 1.0);
        cache.get_at_home(&k2, 1.0);
        let s = cache.total_stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((cache.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalidate_node_drops_only_that_shard() {
        let (_, cache) = cache_n(3, MB);
        cache.with_node(NodeId(0), |c| c.put(CacheKey::Input(HashKey(1)), 5, 0.0, None));
        cache.with_node(NodeId(0), |c| c.put(CacheKey::Input(HashKey(2)), 5, 0.0, None));
        cache.with_node(NodeId(1), |c| c.put(CacheKey::Input(HashKey(3)), 5, 0.0, None));
        assert_eq!(cache.invalidate_node(NodeId(0)), 2);
        assert_eq!(cache.used_per_node()[0], 0, "crashed shard emptied");
        assert!(cache.with_node(NodeId(1), |c| c.contains(&CacheKey::Input(HashKey(3)), 1.0)));
        assert_eq!(cache.invalidate_node(NodeId(0)), 0, "idempotent");
    }

    #[test]
    fn clear_all_empties() {
        let (_, cache) = cache_n(3, MB);
        cache.put_at_home(CacheKey::Input(HashKey(1)), 5, 0.0, None);
        cache.clear_all();
        assert!(cache.used_per_node().iter().all(|&b| b == 0));
    }

    #[test]
    fn hot_key_replication_via_full_range_collapse() {
        // When the LAF scheduler collapses everyone's range onto a hot
        // key's neighborhood, each server can cache its own copy — the
        // paper's extreme single-hot-key case. Emulate: all ranges empty
        // except one per node probe; we simply verify per-node caches are
        // independent stores.
        let (_, cache) = cache_n(4, MB);
        let key = CacheKey::Input(HashKey(7));
        for i in 0..4u32 {
            cache.with_node(NodeId(i), |c| c.put(key.clone(), 100, 0.0, None));
        }
        for i in 0..4u32 {
            assert!(cache.with_node(NodeId(i), |c| c.contains(&key, 1.0)));
        }
    }

    #[test]
    fn node_caches_lock_independently() {
        // Hold one node's cache mid-operation (simulated by cloning its
        // Arc and locking the shard owning a probe key via a long-lived
        // reference) while other nodes' caches stay fully usable — the
        // property the live executor's parallel map phase depends on.
        let (_, cache) = cache_n(4, MB);
        let node0 = cache.node(NodeId(0));
        // Keep node 0 busy: an outstanding Arc does not block anyone.
        node0.put(CacheKey::Input(HashKey(99)), 8, 0.0, None);
        for i in 1..4u32 {
            let key = CacheKey::Input(HashKey(i as u64));
            cache.with_node(NodeId(i), |c| c.put(key.clone(), 8, 0.0, None));
            assert!(cache.with_node(NodeId(i), |c| c.contains(&key, 0.5)));
        }
        assert!(node0.contains(&CacheKey::Input(HashKey(99)), 0.5));
    }

    #[test]
    fn sharded_nodes_preserve_distcache_semantics() {
        // The live configuration: several lock shards per node. Homing,
        // stats aggregation, and invalidation must be unaffected.
        let ring = Ring::with_servers(4, "c");
        let cache = DistributedCache::with_shards(&ring, MB, 8);
        assert_eq!(cache.shards_per_node(), 8);
        let mut homes = std::collections::HashSet::new();
        for i in 0..200u64 {
            let key = CacheKey::Input(HashKey::of_name(&format!("blk{i}")));
            homes.insert(cache.put_at_home(key.clone(), 100, 0.0, None));
            assert!(cache.get_at_home(&key, 1.0).is_some());
        }
        assert!(homes.len() > 1, "keys spread over nodes");
        let s = cache.total_stats();
        assert_eq!(s.hits, 200);
        assert_eq!(s.insertions, 200);
        let dropped: usize =
            (0..4).map(|i| cache.invalidate_node(NodeId(i))).sum();
        assert_eq!(dropped, 200);
        assert!(cache.used_per_node().iter().all(|&b| b == 0));
    }

    #[test]
    fn concurrent_shard_traffic() {
        use std::sync::Arc as StdArc;
        let (_, cache) = cache_n(8, MB);
        let cache = StdArc::new(cache);
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let c = StdArc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let key = CacheKey::Input(HashKey(t as u64 * 10_000 + i));
                    c.with_node(NodeId(t), |n| n.put(key.clone(), 16, i as f64, None));
                    assert!(c.with_node(NodeId(t), |n| n.get(&key, i as f64).is_some()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.total_stats().hits, 8 * 500);
    }
}
