//! The cluster-wide cache layer (the paper's outer ring): per-node caches
//! addressed through a *range table* that the scheduler owns and adjusts.
//!
//! The scheduler's hash key ranges decide which server caches which keys;
//! they start aligned with the DHT file system and drift as the LAF
//! algorithm re-partitions (§II-B: "the hash key ranges of the
//! distributed in-memory cache layer can be misaligned with the hash key
//! ranges of the DHT file system"). When ranges move, entries may be
//! *misplaced*; [`DistributedCache::migrate_misplaced`] implements the
//! optional neighbor-migration pass (§II-E, disabled by default as in the
//! paper's experiments).

use crate::entry::CacheKey;
use crate::lru::CacheStats;
use crate::node_cache::NodeCache;
use eclipse_ring::{NodeId, Ring};
use eclipse_util::{HashKey, KeyRange};

/// Cluster-wide cache: one [`NodeCache`] per server plus the range table.
#[derive(Clone, Debug)]
pub struct DistributedCache {
    caches: Vec<NodeCache>,
    /// (node, cache hash-key range), clockwise order. Tiles the ring.
    ranges: Vec<(NodeId, KeyRange)>,
}

impl DistributedCache {
    /// Build with `capacity_per_node` bytes per server and ranges aligned
    /// with the file-system ring (the initial state, and the permanent
    /// state under delay scheduling).
    pub fn new(ring: &Ring, capacity_per_node: u64) -> DistributedCache {
        let n = ring.len();
        let mut caches = Vec::with_capacity(n);
        for _ in 0..n {
            caches.push(NodeCache::new(capacity_per_node));
        }
        DistributedCache { caches, ranges: ring.ranges() }
    }

    pub fn num_nodes(&self) -> usize {
        self.caches.len()
    }

    /// Current range table.
    pub fn ranges(&self) -> &[(NodeId, KeyRange)] {
        &self.ranges
    }

    /// Admit a new server's cache shard. The caller must assign node ids
    /// densely (the new node's id must equal the previous node count) and
    /// follow up with [`set_ranges`](Self::set_ranges) so the ring
    /// includes the joiner.
    pub fn add_node(&mut self, capacity: u64) -> NodeId {
        let id = NodeId(self.caches.len() as u32);
        self.caches.push(NodeCache::new(capacity));
        id
    }

    /// Install a new range table (the LAF scheduler calls this after each
    /// re-partition). Must tile the ring over the same node set.
    pub fn set_ranges(&mut self, ranges: Vec<(NodeId, KeyRange)>) {
        assert!(!ranges.is_empty());
        self.ranges = ranges;
    }

    /// The server whose cache range covers `key`.
    pub fn home_of(&self, key: HashKey) -> NodeId {
        self.ranges
            .iter()
            .find(|(_, r)| r.contains(key))
            .map(|(n, _)| *n)
            .unwrap_or_else(|| panic!("range table does not cover {key}"))
    }

    pub fn node(&self, id: NodeId) -> &NodeCache {
        &self.caches[id.index()]
    }

    pub fn node_mut(&mut self, id: NodeId) -> &mut NodeCache {
        &mut self.caches[id.index()]
    }

    /// Look up `key` on its home server.
    pub fn get_at_home(&mut self, key: &CacheKey, now: f64) -> Option<(NodeId, u64)> {
        let home = self.home_of(key.hash_key());
        self.caches[home.index()].get(key, now).map(|b| (home, b))
    }

    /// Insert at the home server.
    pub fn put_at_home(&mut self, key: CacheKey, bytes: u64, now: f64, ttl: Option<f64>) -> NodeId {
        let home = self.home_of(key.hash_key());
        self.caches[home.index()].put(key, bytes, now, ttl);
        home
    }

    /// Aggregate statistics over all nodes.
    pub fn total_stats(&self) -> CacheStats {
        let mut agg = CacheStats::default();
        for c in &self.caches {
            let s = c.stats();
            agg.hits += s.hits;
            agg.misses += s.misses;
            agg.insertions += s.insertions;
            agg.evictions += s.evictions;
            agg.expirations += s.expirations;
            agg.rejected += s.rejected;
        }
        agg
    }

    /// Global hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        self.total_stats().hit_ratio()
    }

    /// Bytes cached per node (distribution check).
    pub fn used_per_node(&self) -> Vec<u64> {
        self.caches.iter().map(|c| c.used()).collect()
    }

    /// Empty every node's cache (the paper empties caches before each
    /// cold-cache run).
    pub fn clear_all(&mut self) {
        for c in &mut self.caches {
            c.clear();
        }
    }

    /// Migrate entries stranded by a range change to the neighbor that
    /// now owns them (§II-E's optional data-migration pass). Only
    /// immediate clockwise/counter-clockwise neighbors in the range table
    /// are checked, as in the paper. Returns (entries moved, bytes moved)
    /// so the caller can charge network cost.
    pub fn migrate_misplaced(&mut self, now: f64) -> (usize, u64) {
        let mut moved = 0usize;
        let mut moved_bytes = 0u64;
        let n = self.ranges.len();
        for pos in 0..n {
            let (holder, range) = self.ranges[pos].clone();
            let neighbors = [
                self.ranges[(pos + 1) % n].0,
                self.ranges[(pos + n - 1) % n].0,
            ];
            let misplaced: Vec<CacheKey> = self.caches[holder.index()]
                .keys()
                .into_iter()
                .filter(|k| !range.contains(k.hash_key()))
                .collect();
            for key in misplaced {
                let target = self.home_of(key.hash_key());
                // Only neighbor moves, per the paper's option.
                if !neighbors.contains(&target) || target == holder {
                    continue;
                }
                if let Some(bytes) = self.caches[holder.index()].invalidate(&key) {
                    self.caches[target.index()].put(key, bytes, now, None);
                    moved += 1;
                    moved_bytes += bytes;
                }
            }
        }
        (moved, moved_bytes)
    }

    /// Count entries resident on servers whose current range does not
    /// cover them (misplacement measurement, §II-E).
    pub fn misplaced_entries(&self) -> usize {
        self.ranges
            .iter()
            .map(|(node, range)| {
                self.caches[node.index()]
                    .keys()
                    .into_iter()
                    .filter(|k| !range.contains(k.hash_key()))
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_util::MB;

    fn cache_n(n: usize, cap: u64) -> (Ring, DistributedCache) {
        let ring = Ring::with_servers(n, "c");
        let cache = DistributedCache::new(&ring, cap);
        (ring, cache)
    }

    #[test]
    fn initial_ranges_align_with_ring() {
        let (ring, cache) = cache_n(6, MB);
        for probe in 0..100u64 {
            let k = HashKey::of_name(&format!("p{probe}"));
            assert_eq!(cache.home_of(k), ring.owner_of(k).unwrap().id);
        }
    }

    #[test]
    fn put_get_at_home() {
        let (_, mut cache) = cache_n(4, MB);
        let key = CacheKey::Input(HashKey::of_name("block-0"));
        let home = cache.put_at_home(key.clone(), 1000, 0.0, None);
        let (hit_node, bytes) = cache.get_at_home(&key, 1.0).unwrap();
        assert_eq!(hit_node, home);
        assert_eq!(bytes, 1000);
    }

    #[test]
    fn range_change_redirects_lookups() {
        let (_, mut cache) = cache_n(2, MB);
        let key = CacheKey::Input(HashKey(42));
        let old_home = cache.put_at_home(key.clone(), 10, 0.0, None);
        // Flip the two nodes' ranges.
        let flipped: Vec<(NodeId, KeyRange)> = {
            let r = cache.ranges().to_vec();
            vec![(r[1].0, r[0].1), (r[0].0, r[1].1)]
        };
        cache.set_ranges(flipped);
        let new_home = cache.home_of(HashKey(42));
        assert_ne!(new_home, old_home);
        // Lookup now misses: the entry is stranded on the old home.
        assert!(cache.get_at_home(&key, 1.0).is_none());
        assert_eq!(cache.misplaced_entries(), 1);
    }

    #[test]
    fn migration_rescues_misplaced_entries() {
        let (_, mut cache) = cache_n(2, MB);
        let key = CacheKey::Input(HashKey(42));
        cache.put_at_home(key.clone(), 10, 0.0, None);
        let r = cache.ranges().to_vec();
        cache.set_ranges(vec![(r[1].0, r[0].1), (r[0].0, r[1].1)]);
        let (moved, bytes) = cache.migrate_misplaced(1.0);
        assert_eq!(moved, 1);
        assert_eq!(bytes, 10);
        assert_eq!(cache.misplaced_entries(), 0);
        assert!(cache.get_at_home(&key, 2.0).is_some());
    }

    #[test]
    fn aggregate_stats() {
        let (_, mut cache) = cache_n(3, MB);
        let k1 = CacheKey::Input(HashKey::of_name("a"));
        let k2 = CacheKey::Input(HashKey::of_name("b"));
        cache.put_at_home(k1.clone(), 5, 0.0, None);
        cache.get_at_home(&k1, 1.0);
        cache.get_at_home(&k2, 1.0);
        let s = cache.total_stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((cache.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clear_all_empties() {
        let (_, mut cache) = cache_n(3, MB);
        cache.put_at_home(CacheKey::Input(HashKey(1)), 5, 0.0, None);
        cache.clear_all();
        assert!(cache.used_per_node().iter().all(|&b| b == 0));
    }

    #[test]
    fn hot_key_replication_via_full_range_collapse() {
        // When the LAF scheduler collapses everyone's range onto a hot
        // key's neighborhood, each server can cache its own copy — the
        // paper's extreme single-hot-key case. Emulate: all ranges empty
        // except one per node probe; we simply verify per-node caches are
        // independent stores.
        let (_, mut cache) = cache_n(4, MB);
        let key = CacheKey::Input(HashKey(7));
        for i in 0..4u32 {
            cache.node_mut(NodeId(i)).put(key.clone(), 100, 0.0, None);
        }
        for i in 0..4u32 {
            assert!(cache.node(NodeId(i)).contains(&key, 1.0));
        }
    }
}
