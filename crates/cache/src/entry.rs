//! Cache entry identities.
//!
//! EclipseMR's distributed in-memory cache has two partitions (§II-B):
//!
//! * **iCache** — input file blocks, cached *implicitly* when a map task
//!   reads them. Keyed by the block.
//! * **oCache** — intermediate results and iteration outputs, cached
//!   *explicitly* by applications and "tagged with their metadata
//!   (application ID, user-assigned ID for cached data)".
//!
//! Both kinds are located on the ring by a hash key, so the scheduler's
//! range table can find them without a central directory.

use eclipse_util::HashKey;

/// Tag identifying an explicitly cached object in oCache.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct OutputTag {
    /// Application identifier (e.g. "pagerank").
    pub app: String,
    /// User-assigned identifier for the cached object (e.g.
    /// "iter3/part-00012").
    pub tag: String,
}

impl OutputTag {
    pub fn new(app: impl Into<String>, tag: impl Into<String>) -> OutputTag {
        OutputTag { app: app.into(), tag: tag.into() }
    }

    /// Ring key of the tagged object: hash of `app` and `tag` together.
    pub fn hash_key(&self) -> HashKey {
        let mut buf = Vec::with_capacity(self.app.len() + self.tag.len() + 1);
        buf.extend_from_slice(self.app.as_bytes());
        buf.push(0);
        buf.extend_from_slice(self.tag.as_bytes());
        HashKey::of_bytes(&buf)
    }
}

/// Identity of any cached object.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum CacheKey {
    /// iCache: an input block, identified by its placement hash key.
    /// (We key by the ring hash key rather than `BlockId` so cache and
    /// scheduler agree byte-for-byte on placement.)
    Input(HashKey),
    /// oCache: a tagged intermediate result or iteration output.
    Output(OutputTag),
}

impl CacheKey {
    /// The ring position used to locate this entry.
    pub fn hash_key(&self) -> HashKey {
        match self {
            CacheKey::Input(k) => *k,
            CacheKey::Output(t) => t.hash_key(),
        }
    }

    pub fn is_input(&self) -> bool {
        matches!(self, CacheKey::Input(_))
    }

    pub fn is_output(&self) -> bool {
        matches!(self, CacheKey::Output(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_tag_key_depends_on_both_parts() {
        let a = OutputTag::new("pagerank", "iter1").hash_key();
        let b = OutputTag::new("pagerank", "iter2").hash_key();
        let c = OutputTag::new("kmeans", "iter1").hash_key();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, OutputTag::new("pagerank", "iter1").hash_key());
    }

    #[test]
    fn tag_separator_prevents_ambiguity() {
        // ("ab", "c") must differ from ("a", "bc").
        let x = OutputTag::new("ab", "c").hash_key();
        let y = OutputTag::new("a", "bc").hash_key();
        assert_ne!(x, y);
    }

    #[test]
    fn cache_key_kinds() {
        let i = CacheKey::Input(HashKey(5));
        let o = CacheKey::Output(OutputTag::new("a", "b"));
        assert!(i.is_input() && !i.is_output());
        assert!(o.is_output() && !o.is_input());
        assert_eq!(i.hash_key(), HashKey(5));
    }
}
