//! Cache entry identities.
//!
//! EclipseMR's distributed in-memory cache has two partitions (§II-B):
//!
//! * **iCache** — input file blocks, cached *implicitly* when a map task
//!   reads them. Keyed by the block.
//! * **oCache** — intermediate results and iteration outputs, cached
//!   *explicitly* by applications and "tagged with their metadata
//!   (application ID, user-assigned ID for cached data)".
//!
//! Both kinds are located on the ring by a hash key, so the scheduler's
//! range table can find them without a central directory.

use eclipse_util::HashKey;
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

/// Tag identifying an explicitly cached object in oCache.
///
/// The ring key is computed once at construction and memoized, so
/// [`hash_key`](OutputTag::hash_key) on the cache hot path is a field
/// read instead of a buffer build plus a SHA-1 pass. Fields are private
/// to keep the memo consistent — construct via [`OutputTag::new`].
#[derive(Clone, Debug)]
pub struct OutputTag {
    /// Application identifier (e.g. "pagerank").
    app: String,
    /// User-assigned identifier for the cached object (e.g.
    /// "iter3/part-00012").
    tag: String,
    /// Memoized ring key of (`app`, `tag`).
    key: HashKey,
}

impl OutputTag {
    pub fn new(app: impl Into<String>, tag: impl Into<String>) -> OutputTag {
        let app = app.into();
        let tag = tag.into();
        let mut buf = Vec::with_capacity(app.len() + tag.len() + 1);
        buf.extend_from_slice(app.as_bytes());
        buf.push(0);
        buf.extend_from_slice(tag.as_bytes());
        let key = HashKey::of_bytes(&buf);
        OutputTag { app, tag, key }
    }

    /// Application identifier.
    pub fn app(&self) -> &str {
        &self.app
    }

    /// User-assigned identifier for the cached object.
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// Ring key of the tagged object: hash of `app` and `tag` together
    /// (memoized at construction).
    #[inline]
    pub fn hash_key(&self) -> HashKey {
        self.key
    }
}

impl PartialEq for OutputTag {
    fn eq(&self, other: &OutputTag) -> bool {
        // The memoized key is a cheap prefilter; equal tags always have
        // equal keys, so compare it first and fall back to the strings
        // only on a key match (collisions are possible in principle).
        self.key == other.key && self.app == other.app && self.tag == other.tag
    }
}

impl Eq for OutputTag {}

impl Hash for OutputTag {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hashing only the memoized 64-bit key is sound (a == b implies
        // key_a == key_b) and keeps index-map lookups to one u64 mix
        // instead of re-hashing both strings.
        self.key.0.hash(state);
    }
}

impl PartialOrd for OutputTag {
    fn partial_cmp(&self, other: &OutputTag) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OutputTag {
    fn cmp(&self, other: &OutputTag) -> Ordering {
        // Order by the visible identity, as the old derived Ord did.
        (&self.app, &self.tag).cmp(&(&other.app, &other.tag))
    }
}

/// Identity of any cached object.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum CacheKey {
    /// iCache: an input block, identified by its placement hash key.
    /// (We key by the ring hash key rather than `BlockId` so cache and
    /// scheduler agree byte-for-byte on placement.)
    Input(HashKey),
    /// oCache: a tagged intermediate result or iteration output.
    Output(OutputTag),
}

impl CacheKey {
    /// The ring position used to locate this entry.
    #[inline]
    pub fn hash_key(&self) -> HashKey {
        match self {
            CacheKey::Input(k) => *k,
            CacheKey::Output(t) => t.hash_key(),
        }
    }

    pub fn is_input(&self) -> bool {
        matches!(self, CacheKey::Input(_))
    }

    pub fn is_output(&self) -> bool {
        matches!(self, CacheKey::Output(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_tag_key_depends_on_both_parts() {
        let a = OutputTag::new("pagerank", "iter1").hash_key();
        let b = OutputTag::new("pagerank", "iter2").hash_key();
        let c = OutputTag::new("kmeans", "iter1").hash_key();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, OutputTag::new("pagerank", "iter1").hash_key());
    }

    #[test]
    fn tag_separator_prevents_ambiguity() {
        // ("ab", "c") must differ from ("a", "bc").
        let x = OutputTag::new("ab", "c").hash_key();
        let y = OutputTag::new("a", "bc").hash_key();
        assert_ne!(x, y);
    }

    #[test]
    fn memoized_key_matches_fresh_hash() {
        let t = OutputTag::new("pagerank", "iter3/part-00012");
        let mut buf = Vec::new();
        buf.extend_from_slice(b"pagerank");
        buf.push(0);
        buf.extend_from_slice(b"iter3/part-00012");
        assert_eq!(t.hash_key(), HashKey::of_bytes(&buf));
        // Clones carry the memo.
        assert_eq!(t.clone().hash_key(), t.hash_key());
    }

    #[test]
    fn equality_and_order_follow_visible_identity() {
        let a = OutputTag::new("app", "x");
        let b = OutputTag::new("app", "x");
        let c = OutputTag::new("app", "y");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a < c);
        assert_eq!(a.app(), "app");
        assert_eq!(a.tag(), "x");
    }

    #[test]
    fn cache_key_kinds() {
        let i = CacheKey::Input(HashKey(5));
        let o = CacheKey::Output(OutputTag::new("a", "b"));
        assert!(i.is_input() && !i.is_output());
        assert!(o.is_output() && !o.is_input());
        assert_eq!(i.hash_key(), HashKey(5));
    }
}
