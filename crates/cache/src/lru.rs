//! Byte-budgeted LRU cache with optional TTL expiry.
//!
//! The paper: "each worker server caches only a certain number of
//! recently accessed data objects using the LRU cache replacement policy"
//! (§II-E); oCache entries "are invalidated by time-to-live (TTL) which
//! can be set by applications" (§II-C).

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

#[derive(Clone, Debug)]
struct Slot {
    bytes: u64,
    /// Recency stamp; larger = more recent.
    seq: u64,
    /// Absolute expiry time in seconds; `None` = never.
    expires: Option<f64>,
}

/// Statistics kept by an [`LruCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    pub expirations: u64,
    pub rejected: u64,
}

impl CacheStats {
    /// Hit ratio over all lookups (0 when no lookups occurred).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A byte-capacity LRU cache. Keys are opaque; values are only sizes —
/// payloads for the live executor ride in a side table, keeping this
/// structure shared between the simulator and the live path.
///
/// ```
/// use eclipse_cache::LruCache;
///
/// let mut cache = LruCache::new(100);
/// cache.put("block-a", 60, 0.0, None);
/// cache.put("block-b", 60, 1.0, None); // evicts block-a (LRU, over budget)
/// assert!(cache.get(&"block-a", 2.0).is_none());
/// assert_eq!(cache.get(&"block-b", 2.0), Some(60));
/// assert!(cache.used() <= cache.capacity());
/// ```
#[derive(Clone, Debug)]
pub struct LruCache<K: Eq + Hash + Ord + Clone> {
    capacity: u64,
    used: u64,
    seq: u64,
    entries: HashMap<K, Slot>,
    /// seq -> key, ordered oldest-first for eviction.
    order: BTreeMap<u64, K>,
    stats: CacheStats,
}

impl<K: Eq + Hash + Ord + Clone> LruCache<K> {
    /// A cache holding at most `capacity` bytes. A zero-capacity cache is
    /// legal and rejects every insertion (the paper's "cache size 0"
    /// sweep point in Fig. 7).
    pub fn new(capacity: u64) -> LruCache<K> {
        LruCache {
            capacity,
            used: 0,
            seq: 0,
            entries: HashMap::new(),
            order: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn used(&self) -> u64 {
        self.used
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn touch(&mut self, key: &K) {
        if let Some(slot) = self.entries.get_mut(key) {
            self.order.remove(&slot.seq);
            self.seq += 1;
            slot.seq = self.seq;
            self.order.insert(self.seq, key.clone());
        }
    }

    fn remove_entry(&mut self, key: &K) -> Option<Slot> {
        let slot = self.entries.remove(key)?;
        self.order.remove(&slot.seq);
        self.used -= slot.bytes;
        Some(slot)
    }

    /// Look up `key` at time `now`. A TTL-expired entry counts as a miss
    /// and is dropped. Hits refresh recency. Returns the entry size on a
    /// hit.
    pub fn get(&mut self, key: &K, now: f64) -> Option<u64> {
        match self.entries.get(key) {
            None => {
                self.stats.misses += 1;
                None
            }
            Some(slot) => {
                if slot.expires.is_some_and(|e| now >= e) {
                    self.remove_entry(key);
                    self.stats.expirations += 1;
                    self.stats.misses += 1;
                    None
                } else {
                    let bytes = slot.bytes;
                    self.touch(key);
                    self.stats.hits += 1;
                    Some(bytes)
                }
            }
        }
    }

    /// Peek without affecting recency or statistics.
    pub fn contains(&self, key: &K, now: f64) -> bool {
        self.entries.get(key).is_some_and(|s| !s.expires.is_some_and(|e| now >= e))
    }

    /// Insert `key` of `bytes` size, evicting LRU entries to fit.
    /// `ttl` is seconds from `now` (`None` = no expiry). An object larger
    /// than the whole capacity is rejected (returns false).
    /// Re-inserting an existing key updates size/TTL and refreshes
    /// recency.
    pub fn put(&mut self, key: K, bytes: u64, now: f64, ttl: Option<f64>) -> bool {
        if bytes > self.capacity {
            self.stats.rejected += 1;
            return false;
        }
        self.remove_entry(&key);
        while self.used + bytes > self.capacity {
            // Evict the least-recently-used entry.
            let (&oldest, _) = self.order.iter().next().expect("used > 0 implies entries");
            let victim = self.order[&oldest].clone();
            self.remove_entry(&victim);
            self.stats.evictions += 1;
        }
        self.seq += 1;
        self.order.insert(self.seq, key.clone());
        self.entries.insert(
            key,
            Slot { bytes, seq: self.seq, expires: ttl.map(|t| now + t) },
        );
        self.used += bytes;
        self.stats.insertions += 1;
        true
    }

    /// Remove `key` explicitly; returns its size if present.
    pub fn invalidate(&mut self, key: &K) -> Option<u64> {
        self.remove_entry(key).map(|s| s.bytes)
    }

    /// Drop every expired entry at time `now`; returns the count.
    pub fn expire(&mut self, now: f64) -> usize {
        let dead: Vec<K> = self
            .entries
            .iter()
            .filter(|(_, s)| s.expires.is_some_and(|e| now >= e))
            .map(|(k, _)| k.clone())
            .collect();
        for k in &dead {
            self.remove_entry(k);
            self.stats.expirations += 1;
        }
        dead.len()
    }

    /// Iterate over resident keys (no particular order).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.keys()
    }

    /// Drop everything (used when emptying caches between experiments,
    /// as the paper does before each run).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_recency() {
        let mut c = LruCache::new(100);
        assert!(c.put("a", 40, 0.0, None));
        assert!(c.put("b", 40, 0.0, None));
        assert_eq!(c.get(&"a", 1.0), Some(40)); // a is now most recent
        assert!(c.put("c", 40, 2.0, None)); // evicts b (LRU)
        assert!(c.contains(&"a", 2.0));
        assert!(!c.contains(&"b", 2.0));
        assert!(c.contains(&"c", 2.0));
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = LruCache::new(100);
        for i in 0..50u32 {
            c.put(i, 30, i as f64, None);
            assert!(c.used() <= 100, "used {} after insert {}", c.used(), i);
        }
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn oversized_object_rejected() {
        let mut c = LruCache::new(10);
        assert!(!c.put("big", 11, 0.0, None));
        assert_eq!(c.stats().rejected, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut c: LruCache<u32> = LruCache::new(0);
        assert!(!c.put(1, 1, 0.0, None));
        assert_eq!(c.get(&1, 0.0), None);
    }

    #[test]
    fn ttl_expiry_on_get() {
        let mut c = LruCache::new(100);
        c.put("x", 10, 0.0, Some(5.0));
        assert_eq!(c.get(&"x", 4.9), Some(10));
        assert_eq!(c.get(&"x", 5.0), None);
        assert_eq!(c.stats().expirations, 1);
    }

    #[test]
    fn ttl_bulk_expire() {
        let mut c = LruCache::new(100);
        c.put("a", 10, 0.0, Some(1.0));
        c.put("b", 10, 0.0, Some(2.0));
        c.put("c", 10, 0.0, None);
        assert_eq!(c.expire(1.5), 1);
        assert_eq!(c.expire(10.0), 1);
        assert_eq!(c.len(), 1);
        assert!(c.contains(&"c", 100.0));
    }

    #[test]
    fn reinsert_updates_size() {
        let mut c = LruCache::new(100);
        c.put("k", 60, 0.0, None);
        c.put("k", 20, 1.0, None);
        assert_eq!(c.used(), 20);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c = LruCache::new(100);
        c.put("a", 25, 0.0, None);
        assert_eq!(c.invalidate(&"a"), Some(25));
        assert_eq!(c.invalidate(&"a"), None);
        c.put("b", 25, 0.0, None);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn hit_ratio() {
        let mut c = LruCache::new(100);
        c.put("a", 10, 0.0, None);
        c.get(&"a", 0.0);
        c.get(&"a", 0.0);
        c.get(&"z", 0.0);
        assert!((c.stats().hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
        let empty: LruCache<u8> = LruCache::new(10);
        assert_eq!(empty.stats().hit_ratio(), 0.0);
    }

    #[test]
    fn eviction_order_is_lru_not_fifo() {
        let mut c = LruCache::new(30);
        c.put("a", 10, 0.0, None);
        c.put("b", 10, 1.0, None);
        c.put("c", 10, 2.0, None);
        c.get(&"a", 3.0); // refresh a — b is now oldest
        c.put("d", 10, 4.0, None);
        assert!(c.contains(&"a", 5.0));
        assert!(!c.contains(&"b", 5.0));
    }
}
