//! Byte-budgeted LRU cache with optional TTL expiry.
//!
//! The paper: "each worker server caches only a certain number of
//! recently accessed data objects using the LRU cache replacement policy"
//! (§II-E); oCache entries "are invalidated by time-to-live (TTL) which
//! can be set by applications" (§II-C).
//!
//! # Layout (see DESIGN.md §8g)
//!
//! Entries live in a **slab arena** (`Vec<Slot>`) threaded by an
//! **intrusive doubly-linked recency list**: `head` is the most
//! recently used slot, `tail` the eviction victim. A `HashMap` keyed by
//! `K` maps to arena indices. Every operation is O(1):
//!
//! * **hit** — one hash lookup plus a pointer relink; no allocation, no
//!   key clone (the old design re-keyed a `BTreeMap` recency index on
//!   every touch, cloning the key each time);
//! * **insert** — one arena write plus one index insert (one key clone,
//!   at insert only); eviction pops `tail` directly instead of walking
//!   an ordered map;
//! * **evict/invalidate/expire-on-get** — unlink + free-list push.
//!
//! Freed slots are recycled through a free list, so a cache that has
//! reached steady state allocates nothing at all. Entries may carry an
//! in-slot value `V` (the live executor stores real payloads there —
//! see [`crate::NodeCache`]); the simulator meters sizes only and uses
//! the default `V = ()`.
//!
//! TTL stays lazy exactly as before: a `get` of an expired entry drops
//! it and counts an expiration plus a miss; [`LruCache::expire`] bulk-
//! drops on demand.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Arena index sentinel: no slot.
const NIL: u32 = u32::MAX;

/// Deterministic FxHash-style multiply hasher for the index map. Cache
/// keys are either 64-bit ring positions or tags that pre-hash to one
/// (see [`crate::OutputTag`]), so a single multiply mixes them as well
/// as SipHash at a fraction of the cost — and the simulator stays
/// reproducible because the hasher has no random state.
#[derive(Clone, Copy, Default, Debug)]
pub struct FxHasher(u64);

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `HashMap` with the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// One arena slot: entry metadata, the in-slot value, and the intrusive
/// recency links.
#[derive(Clone, Debug)]
struct Slot<K, V> {
    key: K,
    /// In-slot payload; `None` for metered-only entries and free slots.
    value: Option<V>,
    bytes: u64,
    /// Absolute expiry time in seconds; `None` = never.
    expires: Option<f64>,
    /// Owning tenant (0 = the default/untagged tenant). Only consulted
    /// when the cache has a [`TenantLedger`].
    tenant: u16,
    /// Pinned entries are never chosen as eviction victims (materialized
    /// epoch state). Explicit invalidation and TTL expiry still apply.
    pinned: bool,
    /// More recently used neighbor (toward `head`).
    prev: u32,
    /// Less recently used neighbor (toward `tail`).
    next: u32,
}

/// Per-tenant byte accounting and quotas (multi-tenant mode). Allocated
/// lazily on the first [`LruCache::set_tenant_quota`] call so a cache
/// that never configures quotas takes the exact legacy code path —
/// same branches, same eviction order, bit-identical statistics.
#[derive(Clone, Debug, Default)]
struct TenantLedger {
    /// Resident bytes per tenant (entries appear on first insert).
    used: FxHashMap<u16, u64>,
    /// Byte budget per tenant; absent = unlimited (accounted only).
    quota: FxHashMap<u16, u64>,
}

/// Statistics kept by an [`LruCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    pub expirations: u64,
    pub rejected: u64,
}

impl CacheStats {
    /// Hit ratio over all lookups (0 when no lookups occurred).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fold another stats block into this one (shard aggregation).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.expirations += other.expirations;
        self.rejected += other.rejected;
    }
}

/// A byte-capacity LRU cache. Keys are opaque; every entry has a
/// metered size, and may additionally carry an in-slot value `V` (the
/// live executor's payloads), so one lookup serves both the simulator
/// and the live path.
///
/// ```
/// use eclipse_cache::LruCache;
///
/// let mut cache: LruCache<&str> = LruCache::new(100);
/// cache.put("block-a", 60, 0.0, None);
/// cache.put("block-b", 60, 1.0, None); // evicts block-a (LRU, over budget)
/// assert!(cache.get(&"block-a", 2.0).is_none());
/// assert_eq!(cache.get(&"block-b", 2.0), Some(60));
/// assert!(cache.used() <= cache.capacity());
/// ```
#[derive(Clone, Debug)]
pub struct LruCache<K: Eq + Hash + Clone, V = ()> {
    capacity: u64,
    used: u64,
    slots: Vec<Slot<K, V>>,
    /// Recycled arena indices.
    free: Vec<u32>,
    index: FxHashMap<K, u32>,
    /// Most recently used slot (`NIL` when empty).
    head: u32,
    /// Least recently used slot — the eviction victim (`NIL` when empty).
    tail: u32,
    stats: CacheStats,
    /// Resident bytes held by pinned entries.
    pinned_bytes: u64,
    /// Per-tenant accounting; `None` until the first quota is set.
    tenants: Option<Box<TenantLedger>>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` bytes. A zero-capacity cache is
    /// legal and rejects every insertion (the paper's "cache size 0"
    /// sweep point in Fig. 7).
    pub fn new(capacity: u64) -> LruCache<K, V> {
        LruCache {
            capacity,
            used: 0,
            slots: Vec::new(),
            free: Vec::new(),
            index: FxHashMap::default(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
            pinned_bytes: 0,
            tenants: None,
        }
    }

    /// Give `tenant` a byte budget within this cache. The ledger is
    /// created on the first call; until then tenant tags on inserts are
    /// carried but ignored, keeping the legacy eviction order exactly.
    /// The quota applies from the next insert — entries already over
    /// budget age out through normal LRU pressure.
    pub fn set_tenant_quota(&mut self, tenant: u16, bytes: u64) {
        let ledger = self.tenants.get_or_insert_with(Default::default);
        ledger.quota.insert(tenant, bytes);
        // Back-fill usage for entries inserted before the ledger existed.
        let mut used: FxHashMap<u16, u64> = FxHashMap::default();
        let mut i = self.head;
        while i != NIL {
            let s = &self.slots[i as usize];
            *used.entry(s.tenant).or_default() += s.bytes;
            i = s.next;
        }
        ledger.used = used;
    }

    /// Resident bytes attributed to `tenant` (0 without a ledger).
    pub fn tenant_used(&self, tenant: u16) -> u64 {
        self.tenants.as_ref().and_then(|l| l.used.get(&tenant).copied()).unwrap_or(0)
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn used(&self) -> u64 {
        self.used
    }

    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Detach slot `i` from the recency list.
    #[inline]
    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
    }

    /// Link slot `i` in as the most recently used entry.
    #[inline]
    fn push_front(&mut self, i: u32) {
        let old = self.head;
        {
            let s = &mut self.slots[i as usize];
            s.prev = NIL;
            s.next = old;
        }
        if old != NIL {
            self.slots[old as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Move slot `i` to the front (a recency touch) — O(1), no
    /// allocation, no key clone.
    #[inline]
    fn touch(&mut self, i: u32) {
        if self.head == i {
            return;
        }
        self.unlink(i);
        self.push_front(i);
    }

    /// Remove slot `i` entirely: unlink, drop the in-slot value, free
    /// the arena slot and the index entry. Returns (bytes, value).
    fn detach(&mut self, i: u32) -> (u64, Option<V>) {
        self.unlink(i);
        let slot = &mut self.slots[i as usize];
        let bytes = slot.bytes;
        let tenant = slot.tenant;
        let value = slot.value.take();
        if slot.pinned {
            self.pinned_bytes -= bytes;
        }
        self.used -= bytes;
        self.index.remove(&slot.key);
        self.free.push(i);
        if let Some(ledger) = self.tenants.as_mut() {
            if let Some(u) = ledger.used.get_mut(&tenant) {
                *u = u.saturating_sub(bytes);
            }
        }
        (bytes, value)
    }

    /// Core lookup: on a hit returns the slot index after the recency
    /// touch; handles lazy TTL expiry and all statistics.
    #[inline]
    fn lookup(&mut self, key: &K, now: f64) -> Option<u32> {
        let Some(&i) = self.index.get(key) else {
            self.stats.misses += 1;
            return None;
        };
        if self.slots[i as usize].expires.is_some_and(|e| now >= e) {
            self.detach(i);
            self.stats.expirations += 1;
            self.stats.misses += 1;
            return None;
        }
        self.touch(i);
        self.stats.hits += 1;
        Some(i)
    }

    /// Look up `key` at time `now`. A TTL-expired entry counts as a miss
    /// and is dropped. Hits refresh recency. Returns the entry size on a
    /// hit.
    pub fn get(&mut self, key: &K, now: f64) -> Option<u64> {
        let i = self.lookup(key, now)?;
        Some(self.slots[i as usize].bytes)
    }

    /// Like [`get`](Self::get), but also hands out the in-slot value on
    /// a hit (`None` for a metered-only entry). One lookup serves index
    /// and payload — the live executor's hot path.
    pub fn get_value(&mut self, key: &K, now: f64) -> Option<(u64, Option<&V>)> {
        let i = self.lookup(key, now)?;
        let slot = &self.slots[i as usize];
        Some((slot.bytes, slot.value.as_ref()))
    }

    /// Peek without affecting recency or statistics.
    pub fn contains(&self, key: &K, now: f64) -> bool {
        self.index
            .get(key)
            .is_some_and(|&i| !self.slots[i as usize].expires.is_some_and(|e| now >= e))
    }

    /// Insert `key` of `bytes` size with an in-slot value, evicting LRU
    /// entries to fit. `ttl` is seconds from `now` (`None` = no expiry).
    /// An object larger than the whole capacity is rejected (returns
    /// false). Re-inserting an existing key updates size/TTL/value and
    /// refreshes recency.
    pub fn put_value(
        &mut self,
        key: K,
        value: Option<V>,
        bytes: u64,
        now: f64,
        ttl: Option<f64>,
    ) -> bool {
        self.put_value_tenant(key, value, bytes, now, ttl, 0)
    }

    /// [`put_value`](Self::put_value) attributed to `tenant`. With a
    /// quota configured for the tenant, entries of *that tenant* are
    /// evicted from the LRU tail first until the tenant fits its
    /// budget, so one tenant's insert pressure cannot evict another's
    /// warm entries; an object larger than the tenant budget is
    /// rejected. Without a ledger (no [`set_tenant_quota`]
    /// (Self::set_tenant_quota) call ever) this is byte-for-byte the
    /// legacy single-tenant path.
    pub fn put_value_tenant(
        &mut self,
        key: K,
        value: Option<V>,
        bytes: u64,
        now: f64,
        ttl: Option<f64>,
        tenant: u16,
    ) -> bool {
        self.put_inner(key, value, bytes, now, ttl, tenant, false)
    }

    /// [`put_value_tenant`](Self::put_value_tenant) for **pinned**
    /// entries: materialized epoch state that LRU pressure must never
    /// evict. Pinned entries still count against the tenant's quota and
    /// the global capacity; when the unpinned remainder can't absorb an
    /// insert (everything else resident is pinned) the insert is
    /// rejected rather than evicting a pin. Explicit invalidation,
    /// [`take`](Self::take), TTL expiry, and re-insertion of the same
    /// key all still remove a pinned entry — a pin guards against
    /// *capacity pressure*, not against its owner.
    pub fn put_pinned_tenant(
        &mut self,
        key: K,
        value: Option<V>,
        bytes: u64,
        now: f64,
        ttl: Option<f64>,
        tenant: u16,
    ) -> bool {
        self.put_inner(key, value, bytes, now, ttl, tenant, true)
    }

    /// Clear the pin on `key`, returning it to normal LRU lifetime.
    /// Returns false when the key is not resident.
    pub fn unpin(&mut self, key: &K) -> bool {
        let Some(&i) = self.index.get(key) else {
            return false;
        };
        let slot = &mut self.slots[i as usize];
        if slot.pinned {
            slot.pinned = false;
            self.pinned_bytes -= slot.bytes;
        }
        true
    }

    /// Resident bytes currently held by pinned entries.
    pub fn pinned_bytes(&self) -> u64 {
        self.pinned_bytes
    }

    /// Roll back a slot whose index entry was claimed but that cannot
    /// be linked in because eviction found only pinned victims.
    fn reject_claimed(&mut self, i: u32) -> bool {
        self.slots[i as usize].value = None;
        self.index.remove(&self.slots[i as usize].key);
        self.free.push(i);
        self.stats.rejected += 1;
        false
    }

    #[allow(clippy::too_many_arguments)]
    fn put_inner(
        &mut self,
        key: K,
        value: Option<V>,
        bytes: u64,
        now: f64,
        ttl: Option<f64>,
        tenant: u16,
        pinned: bool,
    ) -> bool {
        if bytes > self.capacity {
            self.stats.rejected += 1;
            return false;
        }
        if let Some(ledger) = self.tenants.as_ref() {
            if let Some(&quota) = ledger.quota.get(&tenant) {
                if bytes > quota {
                    self.stats.rejected += 1;
                    return false;
                }
            }
        }
        // Allocate the new slot first and claim the index entry in ONE
        // hash operation: `insert` both looks up any previous slot for
        // this key and installs the new mapping. The new slot is not
        // linked into the recency list yet, so the eviction loop below
        // can never pick it as a victim.
        let expires = ttl.map(|t| now + t);
        let i = match self.free.pop() {
            Some(i) => {
                let slot = &mut self.slots[i as usize];
                slot.key = key.clone();
                slot.value = value;
                slot.bytes = bytes;
                slot.expires = expires;
                slot.tenant = tenant;
                slot.pinned = pinned;
                i
            }
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    bytes,
                    expires,
                    tenant,
                    pinned,
                    prev: NIL,
                    next: NIL,
                });
                i
            }
        };
        if let Some(old) = self.index.insert(key, i) {
            // Re-insert of a resident key: drop the old slot (its index
            // entry was just overwritten). Matches the old semantics of
            // removing the existing entry before the eviction pass, so
            // its bytes are reclaimed before victims are chosen.
            self.unlink(old);
            let slot = &mut self.slots[old as usize];
            slot.value = None;
            let (old_bytes, old_tenant) = (slot.bytes, slot.tenant);
            if slot.pinned {
                self.pinned_bytes -= old_bytes;
            }
            self.used -= old_bytes;
            self.free.push(old);
            if let Some(ledger) = self.tenants.as_mut() {
                if let Some(u) = ledger.used.get_mut(&old_tenant) {
                    *u = u.saturating_sub(old_bytes);
                }
            }
        }
        if let Some(ledger) = self.tenants.as_ref() {
            if let Some(&quota) = ledger.quota.get(&tenant) {
                // Tenant over budget: evict *its own* LRU entries first,
                // scanning from the global tail. Other tenants' entries
                // are skipped — their warmth is protected.
                let mut victim = self.tail;
                while self.tenant_used(tenant) + bytes > quota && victim != NIL {
                    let s = &self.slots[victim as usize];
                    let prev = s.prev;
                    if s.tenant == tenant && !s.pinned {
                        self.detach(victim);
                        self.stats.evictions += 1;
                    }
                    victim = prev;
                }
                if self.tenant_used(tenant) + bytes > quota {
                    // Only the tenant's pinned entries remain and they
                    // hold the whole quota: a pin never gets evicted to
                    // make room, so the insert loses.
                    return self.reject_claimed(i);
                }
            }
        }
        // Evict least-recently-used entries — walk from the tail,
        // skipping pinned slots. Without pins this detaches exactly the
        // successive tails, the legacy eviction order.
        let mut victim = self.tail;
        while self.used + bytes > self.capacity {
            if victim == NIL {
                // Every remaining resident byte is pinned.
                return self.reject_claimed(i);
            }
            let s = &self.slots[victim as usize];
            let prev = s.prev;
            if !s.pinned {
                self.detach(victim);
                self.stats.evictions += 1;
            }
            victim = prev;
        }
        self.push_front(i);
        self.used += bytes;
        if pinned {
            self.pinned_bytes += bytes;
        }
        self.stats.insertions += 1;
        if let Some(ledger) = self.tenants.as_mut() {
            *ledger.used.entry(tenant).or_default() += bytes;
        }
        true
    }

    /// Insert a metered-only entry (no in-slot value) — the simulator
    /// path. See [`put_value`](Self::put_value) for semantics.
    pub fn put(&mut self, key: K, bytes: u64, now: f64, ttl: Option<f64>) -> bool {
        self.put_value(key, None, bytes, now, ttl)
    }

    /// Remove `key` explicitly; returns its size if present (expired or
    /// not — explicit invalidation ignores TTL).
    pub fn invalidate(&mut self, key: &K) -> Option<u64> {
        let &i = self.index.get(key)?;
        Some(self.detach(i).0)
    }

    /// Remove `key` and return its (size, in-slot value) without
    /// touching recency or statistics — the elastic handoff path
    /// extracts entries wholesale to re-home them on another node.
    pub fn take(&mut self, key: &K) -> Option<(u64, Option<V>)> {
        let &i = self.index.get(key)?;
        Some(self.detach(i))
    }

    /// Drop every expired entry at time `now`; returns the count.
    pub fn expire(&mut self, now: f64) -> usize {
        // Walk the recency list (order is irrelevant for correctness;
        // the list visits exactly the live slots).
        let mut dead = Vec::new();
        let mut i = self.head;
        while i != NIL {
            let s = &self.slots[i as usize];
            if s.expires.is_some_and(|e| now >= e) {
                dead.push(i);
            }
            i = s.next;
        }
        for &i in &dead {
            self.detach(i);
            self.stats.expirations += 1;
        }
        dead.len()
    }

    /// Iterate over resident keys (no particular order).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.index.keys()
    }

    /// Drop everything (used when emptying caches between experiments,
    /// as the paper does before each run).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.index.clear();
        self.head = NIL;
        self.tail = NIL;
        self.used = 0;
        self.pinned_bytes = 0;
        if let Some(ledger) = self.tenants.as_mut() {
            ledger.used.clear(); // quotas survive; usage resets with the contents
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_recency() {
        let mut c: LruCache<&str> = LruCache::new(100);
        assert!(c.put("a", 40, 0.0, None));
        assert!(c.put("b", 40, 0.0, None));
        assert_eq!(c.get(&"a", 1.0), Some(40)); // a is now most recent
        assert!(c.put("c", 40, 2.0, None)); // evicts b (LRU)
        assert!(c.contains(&"a", 2.0));
        assert!(!c.contains(&"b", 2.0));
        assert!(c.contains(&"c", 2.0));
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c: LruCache<u32> = LruCache::new(100);
        for i in 0..50u32 {
            c.put(i, 30, i as f64, None);
            assert!(c.used() <= 100, "used {} after insert {}", c.used(), i);
        }
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn oversized_object_rejected() {
        let mut c: LruCache<&str> = LruCache::new(10);
        assert!(!c.put("big", 11, 0.0, None));
        assert_eq!(c.stats().rejected, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut c: LruCache<u32> = LruCache::new(0);
        assert!(!c.put(1, 1, 0.0, None));
        assert_eq!(c.get(&1, 0.0), None);
    }

    #[test]
    fn ttl_expiry_on_get() {
        let mut c: LruCache<&str> = LruCache::new(100);
        c.put("x", 10, 0.0, Some(5.0));
        assert_eq!(c.get(&"x", 4.9), Some(10));
        assert_eq!(c.get(&"x", 5.0), None);
        assert_eq!(c.stats().expirations, 1);
    }

    #[test]
    fn ttl_bulk_expire() {
        let mut c: LruCache<&str> = LruCache::new(100);
        c.put("a", 10, 0.0, Some(1.0));
        c.put("b", 10, 0.0, Some(2.0));
        c.put("c", 10, 0.0, None);
        assert_eq!(c.expire(1.5), 1);
        assert_eq!(c.expire(10.0), 1);
        assert_eq!(c.len(), 1);
        assert!(c.contains(&"c", 100.0));
    }

    #[test]
    fn reinsert_updates_size() {
        let mut c: LruCache<&str> = LruCache::new(100);
        c.put("k", 60, 0.0, None);
        c.put("k", 20, 1.0, None);
        assert_eq!(c.used(), 20);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c: LruCache<&str> = LruCache::new(100);
        c.put("a", 25, 0.0, None);
        assert_eq!(c.invalidate(&"a"), Some(25));
        assert_eq!(c.invalidate(&"a"), None);
        c.put("b", 25, 0.0, None);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn hit_ratio() {
        let mut c: LruCache<&str> = LruCache::new(100);
        c.put("a", 10, 0.0, None);
        c.get(&"a", 0.0);
        c.get(&"a", 0.0);
        c.get(&"z", 0.0);
        assert!((c.stats().hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
        let empty: LruCache<u8> = LruCache::new(10);
        assert_eq!(empty.stats().hit_ratio(), 0.0);
    }

    #[test]
    fn eviction_order_is_lru_not_fifo() {
        let mut c: LruCache<&str> = LruCache::new(30);
        c.put("a", 10, 0.0, None);
        c.put("b", 10, 1.0, None);
        c.put("c", 10, 2.0, None);
        c.get(&"a", 3.0); // refresh a — b is now oldest
        c.put("d", 10, 4.0, None);
        assert!(c.contains(&"a", 5.0));
        assert!(!c.contains(&"b", 5.0));
    }

    #[test]
    fn in_slot_values_roundtrip() {
        let mut c: LruCache<&str, String> = LruCache::new(100);
        assert!(c.put_value("k", Some("payload".to_string()), 10, 0.0, None));
        let (bytes, v) = c.get_value(&"k", 1.0).unwrap();
        assert_eq!(bytes, 10);
        assert_eq!(v.unwrap(), "payload");
        // Metered-only entries have no value but still hit.
        assert!(c.put("m", 5, 2.0, None));
        let (bytes, v) = c.get_value(&"m", 3.0).unwrap();
        assert_eq!((bytes, v), (5, None));
    }

    #[test]
    fn value_dropped_on_eviction_and_reinsert() {
        let mut c: LruCache<&str, String> = LruCache::new(10);
        c.put_value("a", Some("va".into()), 10, 0.0, None);
        c.put_value("b", Some("vb".into()), 10, 1.0, None); // evicts a
        assert!(c.get_value(&"a", 2.0).is_none());
        // A metered re-insert of b replaces (drops) the in-slot value.
        c.put("b", 10, 3.0, None);
        assert_eq!(c.get_value(&"b", 4.0).unwrap().1, None);
    }

    #[test]
    fn tenant_quota_protects_other_tenants() {
        let mut c: LruCache<u32> = LruCache::new(100);
        c.set_tenant_quota(2, 30);
        // Tenant 1 (no quota) warms 60 bytes.
        for k in 0..6u32 {
            c.put_value_tenant(k, None, 10, k as f64, None, 1);
        }
        // Tenant 2 scans 10 entries of 10 bytes: its quota forces its
        // own entries out, never tenant 1's.
        for k in 100..110u32 {
            c.put_value_tenant(k, None, 10, k as f64, None, 2);
        }
        assert_eq!(c.tenant_used(1), 60, "tenant 1 untouched by the scan");
        assert_eq!(c.tenant_used(2), 30, "tenant 2 held to its quota");
        for k in 0..6u32 {
            assert!(c.contains(&k, 200.0), "tenant 1 key {k} evicted by scan");
        }
        // The scan's survivors are its most recent 3 entries.
        for k in 107..110u32 {
            assert!(c.contains(&k, 200.0));
        }
        assert!(!c.contains(&100, 200.0));
    }

    #[test]
    fn tenant_oversized_object_rejected() {
        let mut c: LruCache<&str> = LruCache::new(100);
        c.set_tenant_quota(5, 20);
        assert!(!c.put_value_tenant("big", None, 21, 0.0, None, 5));
        assert_eq!(c.stats().rejected, 1);
        assert!(c.put_value_tenant("ok", None, 20, 0.0, None, 5));
    }

    #[test]
    fn tenant_accounting_tracks_detach_paths() {
        let mut c: LruCache<&str> = LruCache::new(100);
        c.set_tenant_quota(1, 100);
        c.put_value_tenant("a", None, 10, 0.0, Some(5.0), 1);
        c.put_value_tenant("b", None, 10, 0.0, None, 1);
        assert_eq!(c.tenant_used(1), 20);
        // Re-insert with a new size replaces the accounting.
        c.put_value_tenant("b", None, 30, 1.0, None, 1);
        assert_eq!(c.tenant_used(1), 40);
        // TTL expiry and invalidation both release tenant bytes.
        assert_eq!(c.get(&"a", 6.0), None);
        assert_eq!(c.tenant_used(1), 30);
        c.invalidate(&"b");
        assert_eq!(c.tenant_used(1), 0);
        // Clear resets usage but keeps the quota enforceable.
        c.put_value_tenant("c", None, 10, 7.0, None, 1);
        c.clear();
        assert_eq!(c.tenant_used(1), 0);
        assert!(!c.put_value_tenant("big", None, 101, 8.0, None, 1), "capacity still applies");
    }

    #[test]
    fn quota_set_late_backfills_existing_usage() {
        let mut c: LruCache<u32> = LruCache::new(100);
        c.put_value_tenant(1, None, 40, 0.0, None, 3);
        c.put_value_tenant(2, None, 20, 0.0, None, 4);
        c.set_tenant_quota(3, 50);
        assert_eq!(c.tenant_used(3), 40);
        assert_eq!(c.tenant_used(4), 20);
        // Next tenant-3 insert that would exceed 50 evicts tenant 3's
        // own LRU entry.
        c.put_value_tenant(5, None, 20, 1.0, None, 3);
        assert!(!c.contains(&1, 2.0));
        assert!(c.contains(&2, 2.0), "tenant 4 unaffected");
        assert_eq!(c.tenant_used(3), 20);
    }

    #[test]
    fn no_ledger_means_legacy_eviction_order() {
        // Tenant tags without any quota configured: behavior (victims,
        // stats) is identical to the untagged cache.
        let mut tagged: LruCache<u32> = LruCache::new(50);
        let mut plain: LruCache<u32> = LruCache::new(50);
        for i in 0..40u32 {
            let t = (i % 3) as u16;
            assert_eq!(
                tagged.put_value_tenant(i % 11, None, 7, i as f64, None, t),
                plain.put(i % 11, 7, i as f64, None)
            );
            assert_eq!(tagged.get(&(i % 5), i as f64), plain.get(&(i % 5), i as f64));
        }
        assert_eq!(tagged.stats(), plain.stats());
        assert_eq!(tagged.used(), plain.used());
        let mut a: Vec<u32> = tagged.keys().copied().collect();
        let mut b: Vec<u32> = plain.keys().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn pinned_entries_survive_lru_pressure() {
        let mut c: LruCache<u32> = LruCache::new(30);
        assert!(c.put_pinned_tenant(0, None, 10, 0.0, None, 0));
        assert_eq!(c.pinned_bytes(), 10);
        // A scan of 10 unpinned entries churns past the pin.
        for k in 1..11u32 {
            c.put(k, 10, k as f64, None);
        }
        assert!(c.contains(&0, 20.0), "pinned entry evicted by scan");
        assert!(c.used() <= 30);
        // Unpin returns it to normal lifetime: the next pressure wave
        // can take it.
        assert!(c.unpin(&0));
        assert_eq!(c.pinned_bytes(), 0);
        for k in 20..24u32 {
            c.put(k, 10, 100.0 + k as f64, None);
        }
        assert!(!c.contains(&0, 200.0));
        assert!(!c.unpin(&99), "unpin of absent key is false");
    }

    #[test]
    fn all_pinned_rejects_instead_of_evicting() {
        let mut c: LruCache<u32> = LruCache::new(20);
        assert!(c.put_pinned_tenant(1, None, 10, 0.0, None, 0));
        assert!(c.put_pinned_tenant(2, None, 10, 0.0, None, 0));
        // Nothing evictable remains: the insert must lose, not the pins.
        assert!(!c.put(3, 10, 1.0, None));
        assert_eq!(c.stats().rejected, 1);
        assert!(c.contains(&1, 2.0) && c.contains(&2, 2.0));
        assert_eq!(c.used(), 20);
        // Re-inserting a pinned key replaces it (the owner writes a
        // newer epoch) — that is not capacity pressure.
        assert!(c.put_pinned_tenant(1, None, 10, 3.0, None, 0));
        assert_eq!(c.used(), 20);
        assert_eq!(c.pinned_bytes(), 20);
        assert!(c.contains(&1, 4.0) && c.contains(&2, 4.0));
    }

    #[test]
    fn pinned_respects_tenant_quota() {
        let mut c: LruCache<u32> = LruCache::new(100);
        c.set_tenant_quota(7, 30);
        assert!(c.put_pinned_tenant(1, None, 20, 0.0, None, 7));
        // Second pin would push tenant 7 past its quota and the first
        // pin can't be evicted to make room: reject, quota holds.
        assert!(!c.put_pinned_tenant(2, None, 20, 1.0, None, 7));
        assert_eq!(c.tenant_used(7), 20);
        assert!(c.contains(&1, 2.0));
        // An unpinned sibling entry *can* be displaced by a pin.
        assert!(c.put_value_tenant(3, None, 10, 2.0, None, 7));
        assert!(c.put_pinned_tenant(4, None, 10, 3.0, None, 7));
        assert_eq!(c.tenant_used(7), 30);
    }

    #[test]
    fn pinned_entries_still_expire_and_invalidate() {
        let mut c: LruCache<&str> = LruCache::new(100);
        c.put_pinned_tenant("ttl", None, 10, 0.0, Some(5.0), 0);
        assert_eq!(c.get(&"ttl", 6.0), None, "TTL still applies to pins");
        assert_eq!(c.pinned_bytes(), 0);
        c.put_pinned_tenant("inv", None, 10, 0.0, None, 0);
        assert_eq!(c.invalidate(&"inv"), Some(10));
        assert_eq!(c.pinned_bytes(), 0);
    }

    #[test]
    fn slots_recycled_through_free_list() {
        let mut c: LruCache<u32> = LruCache::new(3);
        for round in 0..10u64 {
            for k in 0..3u32 {
                c.put(k, 1, round as f64, None);
            }
        }
        // 3 resident + arena never grew past the working set.
        assert_eq!(c.len(), 3);
        assert!(c.slots.len() <= 4, "arena grew to {}", c.slots.len());
    }
}
