//! Intra-node cache sharding.
//!
//! One worker server's cache, split N ways by key hash so concurrent
//! lookups from the server's map slots and its RPC service thread
//! contend on a shard lock instead of one per-node mutex. Each shard is
//! a full [`NodeCache`] with its own byte budget; the budgets sum
//! exactly to the node's configured capacity, and a key always maps to
//! the same shard (multiply-shift on the 64-bit ring key), so the
//! union of shards behaves like one cache partitioned by key.
//!
//! With `shards = 1` the wrapper is a single [`NodeCache`] behind one
//! mutex and reproduces the unsharded cache's hit/miss/eviction
//! sequence *exactly* — the simulator pins this configuration so the
//! paper figures stay bit-for-bit reproducible. The live executor
//! defaults to more shards (see `LiveConfig::cache_shards`), trading
//! per-shard LRU horizon for lock independence, as real cache servers
//! (e.g. memcached's slab arenas) do.

use crate::entry::CacheKey;
use crate::lru::CacheStats;
use crate::node_cache::NodeCache;
use bytes::Bytes;
use parking_lot::Mutex;

/// One server's cache, sharded N ways by key hash. All methods take
/// `&self` and lock exactly one shard for the duration of the call.
#[derive(Debug)]
pub struct ShardedNodeCache {
    shards: Vec<Mutex<NodeCache>>,
}

impl Clone for ShardedNodeCache {
    fn clone(&self) -> ShardedNodeCache {
        ShardedNodeCache {
            shards: self.shards.iter().map(|s| Mutex::new(s.lock().clone())).collect(),
        }
    }
}

impl ShardedNodeCache {
    /// A node cache of `capacity` total bytes split over `shards`
    /// shards. Budgets are `capacity / shards`, with the remainder
    /// spread one byte each over the low shards so they sum exactly to
    /// `capacity`.
    pub fn new(capacity: u64, shards: usize) -> ShardedNodeCache {
        assert!(shards >= 1, "a node cache needs at least one shard");
        let n = shards as u64;
        let shards = (0..n)
            .map(|i| {
                let budget = capacity / n + u64::from(i < capacity % n);
                Mutex::new(NodeCache::new(budget))
            })
            .collect();
        ShardedNodeCache { shards }
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `key`: multiply-shift maps the 64-bit ring key
    /// uniformly onto `0..shards` without division.
    #[inline]
    fn shard_of(&self, key: &CacheKey) -> &Mutex<NodeCache> {
        let i = ((key.hash_key().0 as u128 * self.shards.len() as u128) >> 64) as usize;
        &self.shards[i]
    }

    /// Total byte budget (sum over shards).
    pub fn capacity(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().capacity()).sum()
    }

    /// Total bytes resident (sum over shards).
    pub fn used(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().used()).sum()
    }

    /// Look up an entry; returns its byte size on a hit.
    pub fn get(&self, key: &CacheKey, now: f64) -> Option<u64> {
        self.shard_of(key).lock().get(key, now)
    }

    /// Look up and return the real payload (live executor path).
    pub fn get_payload(&self, key: &CacheKey, now: f64) -> Option<Bytes> {
        self.shard_of(key).lock().get_payload(key, now)
    }

    /// Cache a metered entry (simulator path).
    pub fn put(&self, key: CacheKey, bytes: u64, now: f64, ttl: Option<f64>) -> bool {
        self.shard_of(&key).lock().put(key, bytes, now, ttl)
    }

    /// Cache a real payload (live executor path).
    pub fn put_payload(&self, key: CacheKey, data: Bytes, now: f64, ttl: Option<f64>) -> bool {
        self.shard_of(&key).lock().put_payload(key, data, now, ttl)
    }

    /// Cache a real payload attributed to `tenant` (quota accounting).
    pub fn put_payload_tenant(
        &self,
        key: CacheKey,
        data: Bytes,
        now: f64,
        ttl: Option<f64>,
        tenant: u16,
    ) -> bool {
        self.shard_of(&key).lock().put_payload_tenant(key, data, now, ttl, tenant)
    }

    /// Cache a **pinned** payload: materialized epoch state that LRU
    /// pressure never evicts (see [`NodeCache::put_payload_pinned`]).
    pub fn put_payload_pinned(
        &self,
        key: CacheKey,
        data: Bytes,
        now: f64,
        ttl: Option<f64>,
        tenant: u16,
    ) -> bool {
        self.shard_of(&key).lock().put_payload_pinned(key, data, now, ttl, tenant)
    }

    /// Return a pinned entry to normal LRU lifetime.
    pub fn unpin(&self, key: &CacheKey) -> bool {
        self.shard_of(key).lock().unpin(key)
    }

    /// Resident bytes held by pinned entries (sum over shards).
    pub fn pinned_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().pinned_bytes()).sum()
    }

    /// Give `tenant` a byte budget within this node's cache, split over
    /// shards the same way the capacity is (quota/shards, remainder one
    /// byte each to the low shards). Keys hash uniformly over shards,
    /// so a tenant's traffic sees its budget in aggregate.
    pub fn set_tenant_quota(&self, tenant: u16, bytes: u64) {
        let n = self.shards.len() as u64;
        for (i, s) in self.shards.iter().enumerate() {
            let budget = bytes / n + u64::from((i as u64) < bytes % n);
            s.lock().set_tenant_quota(tenant, budget);
        }
    }

    /// Resident bytes attributed to `tenant` (sum over shards).
    pub fn tenant_used(&self, tenant: u16) -> u64 {
        self.shards.iter().map(|s| s.lock().tenant_used(tenant)).sum()
    }

    pub fn contains(&self, key: &CacheKey, now: f64) -> bool {
        self.shard_of(key).lock().contains(key, now)
    }

    pub fn invalidate(&self, key: &CacheKey) -> Option<u64> {
        self.shard_of(key).lock().invalidate(key)
    }

    /// Remove `key`, returning its payload when one is resident
    /// (elastic handoff path; no statistics recorded).
    pub fn take_payload(&self, key: &CacheKey) -> Option<Bytes> {
        self.shard_of(key).lock().take_payload(key)
    }

    /// Evict everything (cold-cache experiment setup).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
    }

    /// Resident keys across all shards, no particular order.
    pub fn keys(&self) -> Vec<CacheKey> {
        let mut all = Vec::new();
        for s in &self.shards {
            all.extend(s.lock().keys());
        }
        all
    }

    /// Resident keys of one shard (invariant tests).
    pub fn shard_keys(&self, shard: usize) -> Vec<CacheKey> {
        self.shards[shard].lock().keys()
    }

    /// One shard's combined LRU statistics (invariant tests).
    pub fn shard_stats(&self, shard: usize) -> CacheStats {
        self.shards[shard].lock().stats()
    }

    /// iCache statistics, aggregated over shards.
    pub fn input_stats(&self) -> CacheStats {
        let mut agg = CacheStats::default();
        for s in &self.shards {
            agg.merge(&s.lock().input_stats());
        }
        agg
    }

    /// oCache statistics, aggregated over shards.
    pub fn output_stats(&self) -> CacheStats {
        let mut agg = CacheStats::default();
        for s in &self.shards {
            agg.merge(&s.lock().output_stats());
        }
        agg
    }

    /// Combined LRU statistics, aggregated over shards.
    pub fn stats(&self) -> CacheStats {
        let mut agg = CacheStats::default();
        for s in &self.shards {
            agg.merge(&s.lock().stats());
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::OutputTag;
    use eclipse_util::HashKey;

    fn ik(v: u64) -> CacheKey {
        CacheKey::Input(HashKey(v))
    }

    #[test]
    fn budgets_sum_to_capacity() {
        for shards in 1..=9 {
            let c = ShardedNodeCache::new(1_000_003, shards);
            assert_eq!(c.capacity(), 1_000_003, "shards={shards}");
        }
    }

    #[test]
    fn single_shard_matches_node_cache_sequence() {
        // shards=1 must reproduce NodeCache exactly: same hits, misses,
        // evictions, same victims.
        let sharded = ShardedNodeCache::new(100, 1);
        let mut plain = NodeCache::new(100);
        for i in 0..200u64 {
            let key = ik(i.wrapping_mul(0x9E3779B97F4A7C15));
            let t = i as f64;
            assert_eq!(sharded.put(key.clone(), 7, t, None), plain.put(key.clone(), 7, t, None));
            let probe = ik((i / 2).wrapping_mul(0x9E3779B97F4A7C15));
            assert_eq!(sharded.get(&probe, t), plain.get(&probe, t));
        }
        assert_eq!(sharded.stats(), plain.stats());
        assert_eq!(sharded.used(), plain.used());
    }

    #[test]
    fn keys_partition_across_shards() {
        let c = ShardedNodeCache::new(1 << 20, 4);
        for i in 0..500u64 {
            c.put(ik(i.wrapping_mul(0x9E3779B97F4A7C15)), 16, 0.0, None);
        }
        let per_shard: Vec<_> = (0..4).map(|s| c.shard_keys(s)).collect();
        let total: usize = per_shard.iter().map(|k| k.len()).sum();
        assert_eq!(total, c.keys().len());
        // No key in two shards; every key findable through the facade.
        for (s, keys) in per_shard.iter().enumerate() {
            for k in keys {
                for (o, other) in per_shard.iter().enumerate() {
                    if o != s {
                        assert!(!other.contains(k), "key in shards {s} and {o}");
                    }
                }
                assert!(c.contains(k, 1.0));
            }
        }
        // Each shard saw some of the uniformly-hashed traffic.
        assert!(per_shard.iter().all(|k| !k.is_empty()));
    }

    #[test]
    fn shard_stats_sum_to_whole() {
        let c = ShardedNodeCache::new(1 << 16, 8);
        for i in 0..300u64 {
            let key = ik(i.wrapping_mul(0x9E3779B97F4A7C15));
            c.put(key.clone(), 64, i as f64, None);
            c.get(&key, i as f64);
            c.get(&ik(i.wrapping_mul(31) + 1), i as f64);
        }
        let mut summed = CacheStats::default();
        for s in 0..8 {
            summed.merge(&c.shard_stats(s));
        }
        assert_eq!(summed, c.stats());
    }

    #[test]
    fn payloads_and_tags_work_through_shards() {
        let c = ShardedNodeCache::new(1 << 20, 4);
        let key = CacheKey::Output(OutputTag::new("app", "iter1"));
        assert!(c.put_payload(key.clone(), Bytes::from_static(b"data"), 0.0, Some(5.0)));
        assert_eq!(c.get_payload(&key, 1.0).unwrap(), Bytes::from_static(b"data"));
        assert_eq!(c.get_payload(&key, 6.0), None, "TTL applies");
        assert_eq!(c.output_stats().hits, 1);
        assert_eq!(c.output_stats().misses, 1);
    }

    #[test]
    fn clear_and_invalidate() {
        let c = ShardedNodeCache::new(1 << 20, 3);
        for i in 0..50u64 {
            c.put(ik(i.wrapping_mul(0x9E3779B97F4A7C15)), 8, 0.0, None);
        }
        let victim = ik(0);
        c.put(victim.clone(), 8, 0.0, None);
        assert_eq!(c.invalidate(&victim), Some(8));
        assert_eq!(c.invalidate(&victim), None);
        c.clear();
        assert_eq!(c.used(), 0);
        assert!(c.keys().is_empty());
    }
}
