//! # eclipse-cache
//!
//! EclipseMR's distributed in-memory cache (the paper's outer ring):
//! per-server LRU caches with a shared byte budget per node, split into
//! the implicit input-block partition (iCache) and the explicit tagged-
//! output partition (oCache, TTL-invalidated), addressed cluster-wide by
//! a scheduler-owned hash-key range table. Includes the optional
//! misplaced-entry migration pass from §II-E.

pub mod distcache;
pub mod entry;
pub mod lru;
pub mod node_cache;
pub mod sharded;

pub use distcache::DistributedCache;
pub use entry::{CacheKey, OutputTag};
pub use lru::{CacheStats, LruCache};
pub use node_cache::NodeCache;
pub use sharded::ShardedNodeCache;
