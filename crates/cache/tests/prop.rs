//! Model-based property tests: the production [`LruCache`] must behave
//! byte-for-byte like a naive reference implementation under arbitrary
//! operation sequences, and the distributed layer must never lose or
//! duplicate entries during migration.

use eclipse_cache::{CacheKey, DistributedCache, LruCache, OutputTag};
use eclipse_ring::Ring;
use eclipse_util::HashKey;
use proptest::prelude::*;

/// A deliberately simple reference LRU: O(n) everything, obviously
/// correct.
struct RefLru {
    capacity: u64,
    /// (key, bytes, expires), most-recently-used LAST.
    entries: Vec<(u32, u64, Option<f64>)>,
}

impl RefLru {
    fn new(capacity: u64) -> RefLru {
        RefLru { capacity, entries: Vec::new() }
    }

    fn used(&self) -> u64 {
        self.entries.iter().map(|e| e.1).sum()
    }

    fn get(&mut self, key: u32, now: f64) -> Option<u64> {
        let idx = self.entries.iter().position(|e| e.0 == key)?;
        if self.entries[idx].2.is_some_and(|e| now >= e) {
            self.entries.remove(idx);
            return None;
        }
        let e = self.entries.remove(idx);
        let bytes = e.1;
        self.entries.push(e);
        Some(bytes)
    }

    fn put(&mut self, key: u32, bytes: u64, now: f64, ttl: Option<f64>) -> bool {
        if bytes > self.capacity {
            return false;
        }
        if let Some(idx) = self.entries.iter().position(|e| e.0 == key) {
            self.entries.remove(idx);
        }
        while self.used() + bytes > self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((key, bytes, ttl.map(|t| now + t)));
        true
    }

    fn invalidate(&mut self, key: u32) -> Option<u64> {
        let idx = self.entries.iter().position(|e| e.0 == key)?;
        Some(self.entries.remove(idx).1)
    }
}

/// One randomized cache operation.
#[derive(Clone, Debug)]
enum Op {
    Get(u32),
    Put(u32, u64, Option<u16>),
    Invalidate(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..20).prop_map(Op::Get),
        (0u32..20, 1u64..60, prop::option::of(1u16..50))
            .prop_map(|(k, b, t)| Op::Put(k, b, t)),
        (0u32..20).prop_map(Op::Invalidate),
    ]
}

proptest! {
    /// The production LRU and the reference agree on every observable
    /// result of every operation, at monotone timestamps.
    #[test]
    fn lru_matches_reference_model(
        ops in prop::collection::vec(op_strategy(), 1..200),
        capacity in 1u64..200,
    ) {
        let mut real: LruCache<u32> = LruCache::new(capacity);
        let mut model = RefLru::new(capacity);
        for (i, op) in ops.iter().enumerate() {
            let now = i as f64;
            match op {
                Op::Get(k) => {
                    prop_assert_eq!(real.get(k, now), model.get(*k, now), "get {} at {}", k, i);
                }
                Op::Put(k, b, ttl) => {
                    let ttl = ttl.map(|t| t as f64);
                    prop_assert_eq!(
                        real.put(*k, *b, now, ttl),
                        model.put(*k, *b, now, ttl),
                        "put {} at {}", k, i
                    );
                }
                Op::Invalidate(k) => {
                    prop_assert_eq!(real.invalidate(k), model.invalidate(*k), "inv {} at {}", k, i);
                }
            }
            prop_assert_eq!(real.used(), model.used(), "used mismatch after op {}", i);
            prop_assert!(real.used() <= capacity);
        }
    }

    /// Migration conserves entries: nothing is lost, nothing duplicated,
    /// and afterwards no rescued entry is misplaced with respect to the
    /// new table (entries whose new home is not a neighbor stay put, as
    /// the paper's neighbor-only option dictates).
    #[test]
    fn migration_conserves_entries(
        keys in prop::collection::vec(any::<u64>(), 1..60),
        rotate in 1usize..5,
    ) {
        let ring = Ring::with_servers_evenly_spaced(8, "m");
        let cache = DistributedCache::new(&ring, 1 << 20);
        for (i, &k) in keys.iter().enumerate() {
            cache.put_at_home(CacheKey::Input(HashKey(k)), 100, i as f64, None);
        }
        let resident_before: usize =
            (0..8).map(|i| cache.with_node(eclipse_ring::NodeId(i), |c| c.keys().len())).sum();

        // Rotate the range table by `rotate` positions: every entry's
        // home moves to the rotate-th neighbor.
        let old = cache.ranges().to_vec();
        let rotated: Vec<_> = (0..old.len())
            .map(|i| (old[(i + rotate) % old.len()].0, old[i].1))
            .collect();
        cache.set_ranges(rotated);

        let (moved, bytes) = cache.migrate_misplaced(100.0);
        prop_assert_eq!(bytes, moved as u64 * 100);
        let resident_after: usize =
            (0..8).map(|i| cache.with_node(eclipse_ring::NodeId(i), |c| c.keys().len())).sum();
        prop_assert_eq!(resident_before, resident_after, "entries lost or duplicated");
        if rotate == 1 {
            // Single-step rotation: every misplaced entry has a neighbor
            // home, so migration clears all misplacement.
            prop_assert_eq!(cache.misplaced_entries(), 0);
        }
    }

    /// oCache tags with TTLs expire exactly like input entries.
    #[test]
    fn tagged_entries_respect_ttl(
        tags in prop::collection::vec("[a-z]{1,6}", 1..30),
        ttl in 1.0f64..50.0,
    ) {
        let ring = Ring::with_servers_evenly_spaced(4, "m");
        let cache = DistributedCache::new(&ring, 1 << 20);
        for t in &tags {
            cache.put_at_home(
                CacheKey::Output(OutputTag::new("app", t.clone())),
                10,
                0.0,
                Some(ttl),
            );
        }
        for t in &tags {
            let key = CacheKey::Output(OutputTag::new("app", t.clone()));
            prop_assert!(cache.get_at_home(&key, ttl - 0.01).is_some());
        }
        for t in &tags {
            let key = CacheKey::Output(OutputTag::new("app", t.clone()));
            prop_assert!(cache.get_at_home(&key, ttl + 0.01).is_none());
        }
    }
}
