//! Model-based property tests: the production [`LruCache`] must behave
//! byte-for-byte like a naive reference implementation under arbitrary
//! operation sequences — same hit/miss verdicts, same eviction victims,
//! same `used()`, same `CacheStats` — and the distributed layer must
//! never lose or duplicate entries during migration. The intra-node
//! shard wrapper is checked for its partition invariants, and with one
//! shard it must be indistinguishable from a bare [`NodeCache`].

use eclipse_cache::{
    CacheKey, CacheStats, DistributedCache, LruCache, NodeCache, OutputTag, ShardedNodeCache,
};
use eclipse_ring::Ring;
use eclipse_util::HashKey;
use proptest::prelude::*;

/// A deliberately simple reference LRU: O(n) everything, obviously
/// correct. Tracks the same statistics the production cache reports.
struct RefLru {
    capacity: u64,
    /// (key, bytes, expires), most-recently-used LAST.
    entries: Vec<(u32, u64, Option<f64>)>,
    stats: CacheStats,
}

impl RefLru {
    fn new(capacity: u64) -> RefLru {
        RefLru { capacity, entries: Vec::new(), stats: CacheStats::default() }
    }

    fn used(&self) -> u64 {
        self.entries.iter().map(|e| e.1).sum()
    }

    /// Resident keys, sorted (the production cache's iteration order is
    /// arbitrary; sorting both sides pins the exact resident *set*, and
    /// therefore the exact eviction victims).
    fn sorted_keys(&self) -> Vec<u32> {
        let mut ks: Vec<u32> = self.entries.iter().map(|e| e.0).collect();
        ks.sort_unstable();
        ks
    }

    fn get(&mut self, key: u32, now: f64) -> Option<u64> {
        let Some(idx) = self.entries.iter().position(|e| e.0 == key) else {
            self.stats.misses += 1;
            return None;
        };
        if self.entries[idx].2.is_some_and(|e| now >= e) {
            self.entries.remove(idx);
            self.stats.expirations += 1;
            self.stats.misses += 1;
            return None;
        }
        let e = self.entries.remove(idx);
        let bytes = e.1;
        self.entries.push(e);
        self.stats.hits += 1;
        Some(bytes)
    }

    fn contains(&self, key: u32, now: f64) -> bool {
        self.entries
            .iter()
            .any(|e| e.0 == key && !e.2.is_some_and(|x| now >= x))
    }

    fn put(&mut self, key: u32, bytes: u64, now: f64, ttl: Option<f64>) -> bool {
        if bytes > self.capacity {
            self.stats.rejected += 1;
            return false;
        }
        if let Some(idx) = self.entries.iter().position(|e| e.0 == key) {
            self.entries.remove(idx);
        }
        while self.used() + bytes > self.capacity {
            self.entries.remove(0);
            self.stats.evictions += 1;
        }
        self.entries.push((key, bytes, ttl.map(|t| now + t)));
        self.stats.insertions += 1;
        true
    }

    fn invalidate(&mut self, key: u32) -> Option<u64> {
        let idx = self.entries.iter().position(|e| e.0 == key)?;
        Some(self.entries.remove(idx).1)
    }
}

/// One randomized cache operation.
#[derive(Clone, Debug)]
enum Op {
    Get(u32),
    Put(u32, u64, Option<u16>),
    Invalidate(u32),
    Contains(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..20).prop_map(Op::Get),
        (0u32..20, 1u64..60, prop::option::of(1u16..50))
            .prop_map(|(k, b, t)| Op::Put(k, b, t)),
        (0u32..20).prop_map(Op::Invalidate),
        (0u32..20).prop_map(Op::Contains),
    ]
}

proptest! {
    /// The production LRU and the reference agree on every observable
    /// result of every operation, at monotone timestamps: hit/miss
    /// verdicts, eviction victims (via the resident key set), `used()`,
    /// and the full `CacheStats` block.
    #[test]
    fn lru_matches_reference_model(
        ops in prop::collection::vec(op_strategy(), 1..200),
        capacity in 1u64..200,
    ) {
        let mut real: LruCache<u32> = LruCache::new(capacity);
        let mut model = RefLru::new(capacity);
        for (i, op) in ops.iter().enumerate() {
            let now = i as f64;
            match op {
                Op::Get(k) => {
                    prop_assert_eq!(real.get(k, now), model.get(*k, now), "get {} at {}", k, i);
                }
                Op::Put(k, b, ttl) => {
                    let ttl = ttl.map(|t| t as f64);
                    prop_assert_eq!(
                        real.put(*k, *b, now, ttl),
                        model.put(*k, *b, now, ttl),
                        "put {} at {}", k, i
                    );
                }
                Op::Invalidate(k) => {
                    prop_assert_eq!(real.invalidate(k), model.invalidate(*k), "inv {} at {}", k, i);
                }
                Op::Contains(k) => {
                    prop_assert_eq!(real.contains(k, now), model.contains(*k, now),
                        "contains {} at {}", k, i);
                }
            }
            prop_assert_eq!(real.used(), model.used(), "used mismatch after op {}", i);
            prop_assert!(real.used() <= capacity);
            prop_assert_eq!(real.stats(), model.stats, "stats mismatch after op {}", i);
            let mut real_keys: Vec<u32> = real.keys().copied().collect();
            real_keys.sort_unstable();
            prop_assert_eq!(real_keys, model.sorted_keys(), "resident set after op {}", i);
            prop_assert_eq!(real.len(), model.entries.len());
        }
    }

    /// With one shard, [`ShardedNodeCache`] is indistinguishable from a
    /// bare [`NodeCache`] under arbitrary operation sequences — the
    /// guarantee that lets the simulator pin `shards = 1` and keep the
    /// paper figures bit-for-bit stable.
    #[test]
    fn single_shard_equals_node_cache(
        ops in prop::collection::vec(op_strategy(), 1..200),
        capacity in 1u64..4000,
    ) {
        let sharded = ShardedNodeCache::new(capacity, 1);
        let mut plain = NodeCache::new(capacity);
        // Spread the small key universe over the hash space so shard
        // selection (a no-op at 1 shard) sees realistic keys.
        let key = |k: u32| CacheKey::Input(HashKey((k as u64).wrapping_mul(0x9E3779B97F4A7C15)));
        for (i, op) in ops.iter().enumerate() {
            let now = i as f64;
            match op {
                Op::Get(k) => {
                    prop_assert_eq!(sharded.get(&key(*k), now), plain.get(&key(*k), now));
                }
                Op::Put(k, b, ttl) => {
                    let ttl = ttl.map(|t| t as f64);
                    prop_assert_eq!(
                        sharded.put(key(*k), *b, now, ttl),
                        plain.put(key(*k), *b, now, ttl)
                    );
                }
                Op::Invalidate(k) => {
                    prop_assert_eq!(sharded.invalidate(&key(*k)), plain.invalidate(&key(*k)));
                }
                Op::Contains(k) => {
                    prop_assert_eq!(sharded.contains(&key(*k), now), plain.contains(&key(*k), now));
                }
            }
            prop_assert_eq!(sharded.used(), plain.used());
        }
        prop_assert_eq!(sharded.stats(), plain.stats());
        prop_assert_eq!(sharded.input_stats(), plain.input_stats());
    }

    /// Sharded-node invariants at any shard count: per-shard statistics
    /// sum to the whole, no key is resident in two shards, the shards'
    /// key sets union to the facade's, and budgets sum to the capacity.
    #[test]
    fn shard_partition_invariants(
        ops in prop::collection::vec(op_strategy(), 1..200),
        capacity in 1u64..4000,
        shards in 1usize..9,
    ) {
        let cache = ShardedNodeCache::new(capacity, shards);
        let key = |k: u32| CacheKey::Input(HashKey((k as u64).wrapping_mul(0x9E3779B97F4A7C15)));
        for (i, op) in ops.iter().enumerate() {
            let now = i as f64;
            match op {
                Op::Get(k) => { cache.get(&key(*k), now); }
                Op::Put(k, b, ttl) => { cache.put(key(*k), *b, now, ttl.map(|t| t as f64)); }
                Op::Invalidate(k) => { cache.invalidate(&key(*k)); }
                Op::Contains(k) => { cache.contains(&key(*k), now); }
            }
        }
        prop_assert_eq!(cache.capacity(), capacity, "budgets sum to capacity");
        let mut summed = CacheStats::default();
        let mut all_keys: Vec<CacheKey> = Vec::new();
        for s in 0..shards {
            summed.merge(&cache.shard_stats(s));
            let keys = cache.shard_keys(s);
            for k in &keys {
                prop_assert!(!all_keys.contains(k), "key {:?} resident in two shards", k);
            }
            all_keys.extend(keys);
        }
        prop_assert_eq!(summed, cache.stats(), "per-shard stats sum to the whole");
        let mut facade = cache.keys();
        facade.sort();
        all_keys.sort();
        prop_assert_eq!(all_keys, facade, "shard key sets union to the facade");
    }

    /// Migration conserves entries: nothing is lost, nothing duplicated,
    /// and afterwards no rescued entry is misplaced with respect to the
    /// new table (entries whose new home is not a neighbor stay put, as
    /// the paper's neighbor-only option dictates).
    #[test]
    fn migration_conserves_entries(
        keys in prop::collection::vec(any::<u64>(), 1..60),
        rotate in 1usize..5,
    ) {
        let ring = Ring::with_servers_evenly_spaced(8, "m");
        let cache = DistributedCache::new(&ring, 1 << 20);
        for (i, &k) in keys.iter().enumerate() {
            cache.put_at_home(CacheKey::Input(HashKey(k)), 100, i as f64, None);
        }
        let resident_before: usize =
            (0..8).map(|i| cache.with_node(eclipse_ring::NodeId(i), |c| c.keys().len())).sum();

        // Rotate the range table by `rotate` positions: every entry's
        // home moves to the rotate-th neighbor.
        let old = cache.ranges().to_vec();
        let rotated: Vec<_> = (0..old.len())
            .map(|i| (old[(i + rotate) % old.len()].0, old[i].1))
            .collect();
        cache.set_ranges(rotated);

        let (moved, bytes) = cache.migrate_misplaced(100.0);
        prop_assert_eq!(bytes, moved as u64 * 100);
        let resident_after: usize =
            (0..8).map(|i| cache.with_node(eclipse_ring::NodeId(i), |c| c.keys().len())).sum();
        prop_assert_eq!(resident_before, resident_after, "entries lost or duplicated");
        if rotate == 1 {
            // Single-step rotation: every misplaced entry has a neighbor
            // home, so migration clears all misplacement.
            prop_assert_eq!(cache.misplaced_entries(), 0);
        }
    }

    /// oCache tags with TTLs expire exactly like input entries.
    #[test]
    fn tagged_entries_respect_ttl(
        tags in prop::collection::vec("[a-z]{1,6}", 1..30),
        ttl in 1.0f64..50.0,
    ) {
        let ring = Ring::with_servers_evenly_spaced(4, "m");
        let cache = DistributedCache::new(&ring, 1 << 20);
        for t in &tags {
            cache.put_at_home(
                CacheKey::Output(OutputTag::new("app", t.clone())),
                10,
                0.0,
                Some(ttl),
            );
        }
        for t in &tags {
            let key = CacheKey::Output(OutputTag::new("app", t.clone()));
            prop_assert!(cache.get_at_home(&key, ttl - 0.01).is_some());
        }
        for t in &tags {
            let key = CacheKey::Output(OutputTag::new("app", t.clone()));
            prop_assert!(cache.get_at_home(&key, ttl + 0.01).is_none());
        }
    }
}
