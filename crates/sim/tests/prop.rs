//! Property tests for the simulation substrate: FIFO causality,
//! conservation of busy time, slot-pool parallelism bounds, and network
//! path monotonicity.

use eclipse_sim::{EventQueue, Network, NetworkConfig, SerialResource, SimTime, SlotPool};
use proptest::prelude::*;

proptest! {
    /// A serial resource never finishes a request before its submission,
    /// completions are FIFO-monotone, and total busy time equals the sum
    /// of service times.
    #[test]
    fn serial_resource_fifo(
        reqs in prop::collection::vec((0.0f64..100.0, 1u64..10_000), 1..60),
        rate in 1.0f64..1000.0,
        per_request in 0.0f64..0.5,
    ) {
        let mut r = SerialResource::new(rate, per_request);
        // Submit in nondecreasing time order (the model's contract).
        let mut sorted = reqs.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut last_done = 0.0f64;
        let mut service_sum = 0.0f64;
        for (t, bytes) in &sorted {
            let done = r.reserve(SimTime(*t), *bytes);
            let service = per_request + *bytes as f64 / rate;
            service_sum += service;
            prop_assert!(done.secs() >= *t + service - 1e-9, "finished early");
            prop_assert!(done.secs() >= last_done, "FIFO order violated");
            last_done = done.secs();
        }
        prop_assert!((r.busy_seconds() - service_sum).abs() < 1e-6);
        prop_assert_eq!(r.requests(), sorted.len() as u64);
    }

    /// A slot pool with n slots never runs more than n tasks at once:
    /// total busy time across overlapping intervals respects capacity.
    #[test]
    fn slot_pool_respects_parallelism(
        durs in prop::collection::vec(0.1f64..10.0, 1..50),
        slots in 1usize..8,
    ) {
        let mut p = SlotPool::new(slots);
        let mut intervals = Vec::new();
        for d in &durs {
            let (s, e) = p.run(SimTime(0.0), *d);
            intervals.push((s.secs(), e.secs()));
        }
        // At any task start, strictly fewer than `slots` other tasks may
        // be running.
        for &(s, _) in &intervals {
            let overlapping = intervals
                .iter()
                .filter(|&&(os, oe)| os <= s && s < oe)
                .count();
            prop_assert!(overlapping <= slots, "{overlapping} > {slots} at {s}");
        }
        // Work conservation: makespan ≥ total work / slots.
        let total: f64 = durs.iter().sum();
        prop_assert!(p.makespan().secs() >= total / slots as f64 - 1e-9);
        prop_assert_eq!(p.total_tasks(), durs.len() as u64);
    }

    /// Network transfers take at least bytes/min(bandwidth) and never
    /// complete before submission; cross-rack accounting is consistent.
    #[test]
    fn network_transfer_bounds(
        transfers in prop::collection::vec((0usize..6, 0usize..6, 1u64..1_000_000), 1..40),
    ) {
        let cfg = NetworkConfig { nic_bw: 1e6, uplink_bw: 5e5, latency: 0.001, nodes_per_rack: 2 };
        let mut net = Network::new(6, cfg);
        let mut expected_cross = 0u64;
        let mut expected_total = 0u64;
        for (i, &(from, to, bytes)) in transfers.iter().enumerate() {
            let now = i as f64 * 0.01;
            let done = net.transfer(SimTime(now), from, to, bytes);
            if from == to {
                prop_assert_eq!(done.secs(), now);
                continue;
            }
            expected_total += bytes;
            let min_rate = if net.same_rack(from, to) { 1e6 } else { 5e5 };
            prop_assert!(
                done.secs() >= now + bytes as f64 / min_rate - 1e-9,
                "faster than the bottleneck link"
            );
            if !net.same_rack(from, to) {
                expected_cross += bytes;
            }
        }
        prop_assert_eq!(net.bytes_total(), expected_total);
        prop_assert_eq!(net.bytes_cross_rack(), expected_cross);
    }

    /// The event queue pops every event exactly once, in time order, with
    /// FIFO tie-breaking.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0.0f64..1000.0, 1..100)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime(*t), i);
        }
        let mut popped = Vec::new();
        let mut last = (f64::NEG_INFINITY, 0usize);
        while let Some((t, i)) = q.pop() {
            // Time nondecreasing; equal times in insertion order.
            prop_assert!(t.secs() >= last.0);
            if t.secs() == last.0 {
                prop_assert!(i > last.1, "FIFO tie-break violated");
            }
            last = (t.secs(), i);
            popped.push(i);
        }
        popped.sort_unstable();
        prop_assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
    }
}
