//! # eclipse-sim
//!
//! Discrete-event cluster substrate for the EclipseMR reproduction.
//! The paper's evaluation ran on a 40-node cluster we do not have; this
//! crate supplies a deterministic simulated replacement: an event queue
//! with simulated time, FIFO serial resources (HDDs, memory channels,
//! NICs, switch uplinks), per-node task-slot pools, and a two-level
//! switched network, all calibrated to the paper's hardware.
//!
//! The scheduling/placement *decisions* are made by the production crates
//! (`eclipse-ring`, `eclipse-sched`, `eclipse-cache`, `eclipse-dhtfs`);
//! this crate only answers "when does that finish?".

pub mod cluster;
pub mod network;
pub mod resource;
pub mod time;

pub use cluster::{ClusterConfig, NodeConfig, SimCluster, SimNode};
pub use network::{Network, NetworkConfig};
pub use resource::{SerialResource, SlotPool};
pub use time::{EventQueue, SimTime};
