//! The simulated cluster: per-node disks, memory channels and task slots
//! plus the shared network fabric, calibrated to the paper's testbed
//! (40 nodes, dual quad-core Xeon E5506, 20 GB RAM, one 7200 rpm HDD for
//! the DHT FS / HDFS, 8 map + 8 reduce slots per node).

use crate::network::{Network, NetworkConfig};
use crate::resource::{SerialResource, SlotPool};
use crate::time::SimTime;
use eclipse_util::MB;

/// Calibration constants for one node.
#[derive(Clone, Copy, Debug)]
pub struct NodeConfig {
    /// HDD sequential throughput, bytes/s (7200 rpm ≈ 100 MB/s).
    pub disk_bw: f64,
    /// Per-request disk positioning cost, seconds (~8 ms).
    pub disk_seek: f64,
    /// Memory bandwidth for cache reads, bytes/s (~4 GB/s effective).
    pub mem_bw: f64,
    /// Map task slots (8 in the paper).
    pub map_slots: usize,
    /// Reduce task slots (8 in the paper).
    pub reduce_slots: usize,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            disk_bw: 100.0 * MB as f64,
            disk_seek: 0.008,
            mem_bw: 4096.0 * MB as f64,
            map_slots: 8,
            reduce_slots: 8,
        }
    }
}

/// One simulated server.
#[derive(Clone, Debug)]
pub struct SimNode {
    pub disk: SerialResource,
    pub memory: SerialResource,
    pub map_slots: SlotPool,
    pub reduce_slots: SlotPool,
}

impl SimNode {
    pub fn new(cfg: NodeConfig) -> SimNode {
        SimNode {
            disk: SerialResource::new(cfg.disk_bw, cfg.disk_seek),
            memory: SerialResource::new(cfg.mem_bw, 0.0),
            map_slots: SlotPool::new(cfg.map_slots),
            reduce_slots: SlotPool::new(cfg.reduce_slots),
        }
    }
}

/// Whole-cluster configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    pub nodes: usize,
    pub node: NodeConfig,
    pub network: NetworkConfig,
}

impl ClusterConfig {
    /// The paper's 40-node testbed.
    pub fn paper_testbed() -> ClusterConfig {
        ClusterConfig { nodes: 40, node: NodeConfig::default(), network: NetworkConfig::default() }
    }

    /// A testbed with a different node count but the same hardware
    /// (used by the Fig. 5 node-count sweep: 6..38 nodes).
    pub fn paper_testbed_with_nodes(nodes: usize) -> ClusterConfig {
        ClusterConfig { nodes, ..Self::paper_testbed() }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self::paper_testbed()
    }
}

/// The simulated cluster state.
#[derive(Clone, Debug)]
pub struct SimCluster {
    cfg: ClusterConfig,
    pub nodes: Vec<SimNode>,
    pub network: Network,
    /// Per-node CPU speed multiplier (1.0 = nominal; 0.5 = half speed).
    /// Heterogeneous clusters are the straggler setting the MapReduce
    /// skew literature targets.
    speed: Vec<f64>,
}

impl SimCluster {
    pub fn new(cfg: ClusterConfig) -> SimCluster {
        Self::with_speeds(cfg, &[])
    }

    /// Build with explicit per-node CPU speed factors (padded with 1.0).
    pub fn with_speeds(cfg: ClusterConfig, speeds: &[f64]) -> SimCluster {
        assert!(cfg.nodes > 0);
        let mut speed: Vec<f64> = speeds.to_vec();
        speed.resize(cfg.nodes, 1.0);
        assert!(speed.iter().all(|&s| s > 0.0), "speed factors must be positive");
        SimCluster {
            cfg,
            nodes: (0..cfg.nodes).map(|_| SimNode::new(cfg.node)).collect(),
            network: Network::new(cfg.nodes, cfg.network),
            speed,
        }
    }

    /// CPU speed factor of `node`.
    pub fn speed_of(&self, node: usize) -> f64 {
        self.speed[node]
    }

    /// Seconds of wall time `cpu_secs` of nominal CPU work takes on
    /// `node`.
    pub fn cpu_time(&self, node: usize, cpu_secs: f64) -> f64 {
        cpu_secs / self.speed[node]
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Admit a new node with the cluster's standard hardware; returns
    /// its index.
    pub fn add_node(&mut self) -> usize {
        self.nodes.push(SimNode::new(self.cfg.node));
        self.speed.push(1.0);
        let id = self.network.add_node();
        debug_assert_eq!(id + 1, self.nodes.len());
        id
    }

    /// Total map slots across the cluster.
    pub fn total_map_slots(&self) -> usize {
        self.nodes.iter().map(|n| n.map_slots.slots()).sum()
    }

    /// Read `bytes` from `node`'s local disk starting at `now`.
    pub fn disk_read(&mut self, now: SimTime, node: usize, bytes: u64) -> SimTime {
        self.nodes[node].disk.reserve(now, bytes)
    }

    /// Read `bytes` from `node`'s in-memory cache starting at `now`.
    pub fn mem_read(&mut self, now: SimTime, node: usize, bytes: u64) -> SimTime {
        self.nodes[node].memory.reserve(now, bytes)
    }

    /// Move `bytes` from `from`'s disk to `to`'s memory: a remote block
    /// fetch. Disk read then network transfer, pipelined (the slower of
    /// the two stages dominates; we serialize them which matches HDFS-
    /// style block fetches closely enough at 128 MB granularity).
    pub fn remote_disk_read(&mut self, now: SimTime, from: usize, to: usize, bytes: u64) -> SimTime {
        let after_disk = self.nodes[from].disk.reserve(now, bytes);
        self.network.transfer(after_disk, from, to, bytes)
    }

    /// Move `bytes` from `from`'s memory to `to`'s memory: a remote cache
    /// hit (EclipseMR reads remote cached data directly, §III-F).
    pub fn remote_mem_read(&mut self, now: SimTime, from: usize, to: usize, bytes: u64) -> SimTime {
        let after_mem = self.nodes[from].memory.reserve(now, bytes);
        self.network.transfer(after_mem, from, to, bytes)
    }

    /// Latency of a disk transfer without reserving the device. Use for
    /// small asynchronous writes that happen chronologically *between*
    /// already-reserved operations — reserving them out of order would
    /// corrupt the FIFO horizon model.
    pub fn disk_latency(&self, _node: usize, bytes: u64) -> f64 {
        self.cfg.node.disk_seek + bytes as f64 / self.cfg.node.disk_bw
    }

    /// Latency of a memory read without reserving the channel.
    pub fn mem_latency(&self, _node: usize, bytes: u64) -> f64 {
        bytes as f64 / self.cfg.node.mem_bw
    }

    /// Latency of a network transfer without reserving the path.
    pub fn net_latency(&self, from: usize, to: usize, bytes: u64) -> f64 {
        if from == to {
            return 0.0;
        }
        self.cfg.network.latency + bytes as f64 / self.cfg.network.nic_bw
    }

    /// Largest completion horizon across all node resources — the
    /// simulation makespan.
    pub fn makespan(&self) -> SimTime {
        let mut t = SimTime::ZERO;
        for n in &self.nodes {
            t = t.max(n.map_slots.makespan()).max(n.reduce_slots.makespan());
        }
        t
    }

    /// Tasks-per-slot counts over every map slot in the cluster (the
    /// paper's §III-C load-balance metric).
    pub fn map_tasks_per_slot(&self) -> Vec<u64> {
        self.nodes.iter().flat_map(|n| n.map_slots.tasks_per_slot().iter().copied()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let c = SimCluster::new(ClusterConfig::paper_testbed());
        assert_eq!(c.len(), 40);
        assert_eq!(c.total_map_slots(), 320);
        assert_eq!(c.network.racks(), 2);
    }

    #[test]
    fn disk_read_rate() {
        let mut c = SimCluster::new(ClusterConfig::paper_testbed_with_nodes(2));
        // 100 MB at 100 MB/s + 8 ms seek ≈ 1.008 s.
        let t = c.disk_read(SimTime(0.0), 0, 100 * MB);
        assert!((t.secs() - 1.008).abs() < 1e-9, "{t}");
    }

    #[test]
    fn mem_faster_than_disk() {
        let mut c = SimCluster::new(ClusterConfig::paper_testbed_with_nodes(2));
        let td = c.disk_read(SimTime(0.0), 0, 128 * MB);
        let tm = c.mem_read(SimTime(0.0), 1, 128 * MB);
        assert!(tm.secs() < td.secs() / 10.0);
    }

    #[test]
    fn remote_read_crosses_network() {
        let mut c = SimCluster::new(ClusterConfig::paper_testbed_with_nodes(4));
        let local = c.disk_read(SimTime(0.0), 0, 128 * MB).secs();
        let mut c2 = SimCluster::new(ClusterConfig::paper_testbed_with_nodes(4));
        let remote = c2.remote_disk_read(SimTime(0.0), 0, 1, 128 * MB).secs();
        // Remote read = disk + network, strictly slower than local.
        assert!(remote > local);
        // Roughly disk (1.29s) + net (1.09s).
        assert!(remote > 2.0 && remote < 3.0, "remote {remote}");
    }

    #[test]
    fn remote_mem_read_beats_remote_disk() {
        let mut a = SimCluster::new(ClusterConfig::paper_testbed_with_nodes(4));
        let mem = a.remote_mem_read(SimTime(0.0), 0, 1, 128 * MB).secs();
        let mut b = SimCluster::new(ClusterConfig::paper_testbed_with_nodes(4));
        let disk = b.remote_disk_read(SimTime(0.0), 0, 1, 128 * MB).secs();
        assert!(mem < disk);
    }

    #[test]
    fn heterogeneous_speeds() {
        let c = SimCluster::with_speeds(
            ClusterConfig::paper_testbed_with_nodes(3),
            &[1.0, 0.5],
        );
        assert_eq!(c.speed_of(0), 1.0);
        assert_eq!(c.speed_of(1), 0.5);
        assert_eq!(c.speed_of(2), 1.0, "padded to nominal");
        assert_eq!(c.cpu_time(0, 10.0), 10.0);
        assert_eq!(c.cpu_time(1, 10.0), 20.0, "half-speed node takes twice as long");
    }

    #[test]
    fn makespan_tracks_slots() {
        let mut c = SimCluster::new(ClusterConfig::paper_testbed_with_nodes(2));
        assert_eq!(c.makespan().secs(), 0.0);
        c.nodes[1].map_slots.run(SimTime(0.0), 42.0);
        assert_eq!(c.makespan().secs(), 42.0);
    }
}
