//! Two-level switched network model.
//!
//! The paper's testbed: 20 nodes per 1 GbE rack switch, two rack switches
//! joined by a third 1 GbE switch. We model four serial resources per
//! transfer path — sender NIC (out), receiver NIC (in), and for
//! cross-rack traffic the source rack's uplink and the destination rack's
//! downlink. A transfer reserves the full byte count on every resource on
//! its path and completes at the latest of the reservations
//! (store-and-forward at each contended device).

use crate::resource::SerialResource;
use crate::time::SimTime;

/// Network calibration constants.
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// Per-node NIC bandwidth, bytes/s (1 GbE ≈ 117 MB/s).
    pub nic_bw: f64,
    /// Rack-to-core uplink bandwidth, bytes/s (also 1 GbE in the paper).
    pub uplink_bw: f64,
    /// Fixed per-transfer latency, seconds.
    pub latency: f64,
    /// Nodes per rack (20 in the paper).
    pub nodes_per_rack: usize,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            nic_bw: 117.0 * 1024.0 * 1024.0,
            uplink_bw: 117.0 * 1024.0 * 1024.0,
            latency: 0.000_1,
            nodes_per_rack: 20,
        }
    }
}

/// The simulated fabric for `n` nodes.
#[derive(Clone, Debug)]
pub struct Network {
    cfg: NetworkConfig,
    rack_of: Vec<usize>,
    nic_out: Vec<SerialResource>,
    nic_in: Vec<SerialResource>,
    uplink_up: Vec<SerialResource>,
    uplink_down: Vec<SerialResource>,
    transfers: u64,
    bytes_total: u64,
    bytes_cross_rack: u64,
}

impl Network {
    pub fn new(nodes: usize, cfg: NetworkConfig) -> Network {
        assert!(nodes > 0);
        assert!(cfg.nodes_per_rack > 0);
        let racks = nodes.div_ceil(cfg.nodes_per_rack);
        let rack_of = (0..nodes).map(|i| i / cfg.nodes_per_rack).collect();
        Network {
            cfg,
            rack_of,
            nic_out: vec![SerialResource::new(cfg.nic_bw, cfg.latency); nodes],
            nic_in: vec![SerialResource::new(cfg.nic_bw, cfg.latency); nodes],
            uplink_up: vec![SerialResource::new(cfg.uplink_bw, 0.0); racks],
            uplink_down: vec![SerialResource::new(cfg.uplink_bw, 0.0); racks],
            transfers: 0,
            bytes_total: 0,
            bytes_cross_rack: 0,
        }
    }

    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    pub fn nodes(&self) -> usize {
        self.rack_of.len()
    }

    pub fn racks(&self) -> usize {
        self.uplink_up.len()
    }

    pub fn rack_of(&self, node: usize) -> usize {
        self.rack_of[node]
    }

    pub fn same_rack(&self, a: usize, b: usize) -> bool {
        self.rack_of[a] == self.rack_of[b]
    }

    /// Admit a new node: a fresh NIC pair, racked after the existing
    /// nodes (a new rack is added when the current one is full).
    pub fn add_node(&mut self) -> usize {
        let id = self.rack_of.len();
        let rack = id / self.cfg.nodes_per_rack;
        self.rack_of.push(rack);
        self.nic_out.push(SerialResource::new(self.cfg.nic_bw, self.cfg.latency));
        self.nic_in.push(SerialResource::new(self.cfg.nic_bw, self.cfg.latency));
        while self.uplink_up.len() <= rack {
            self.uplink_up.push(SerialResource::new(self.cfg.uplink_bw, 0.0));
            self.uplink_down.push(SerialResource::new(self.cfg.uplink_bw, 0.0));
        }
        id
    }

    /// Reserve a transfer of `bytes` from `from` to `to` starting at
    /// `now`; returns the completion time. Local "transfers" (from == to)
    /// are free (handled by the caller's memory model) and return `now`.
    pub fn transfer(&mut self, now: SimTime, from: usize, to: usize, bytes: u64) -> SimTime {
        if from == to {
            return now;
        }
        self.transfers += 1;
        self.bytes_total += bytes;
        let mut done = self.nic_out[from].reserve(now, bytes);
        if !self.same_rack(from, to) {
            self.bytes_cross_rack += bytes;
            let up = self.uplink_up[self.rack_of[from]].reserve(now, bytes);
            let downr = self.uplink_down[self.rack_of[to]].reserve(now, bytes);
            done = done.max(up).max(downr);
        }
        let rx = self.nic_in[to].reserve(now, bytes);
        done.max(rx)
    }

    /// Total bytes moved so far.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    /// Bytes that crossed the rack boundary.
    pub fn bytes_cross_rack(&self) -> u64 {
        self.bytes_cross_rack
    }

    pub fn transfers(&self) -> u64 {
        self.transfers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_small() -> NetworkConfig {
        NetworkConfig { nic_bw: 100.0, uplink_bw: 100.0, latency: 0.0, nodes_per_rack: 2 }
    }

    #[test]
    fn rack_assignment() {
        let net = Network::new(5, cfg_small());
        assert_eq!(net.racks(), 3);
        assert_eq!(net.rack_of(0), 0);
        assert_eq!(net.rack_of(1), 0);
        assert_eq!(net.rack_of(2), 1);
        assert_eq!(net.rack_of(4), 2);
        assert!(net.same_rack(0, 1));
        assert!(!net.same_rack(1, 2));
    }

    #[test]
    fn same_rack_transfer_is_nic_bound() {
        let mut net = Network::new(4, cfg_small());
        let done = net.transfer(SimTime(0.0), 0, 1, 100);
        assert!((done.secs() - 1.0).abs() < 1e-12);
        assert_eq!(net.bytes_cross_rack(), 0);
    }

    #[test]
    fn cross_rack_transfer_reserves_uplinks() {
        let mut net = Network::new(4, cfg_small());
        let done = net.transfer(SimTime(0.0), 0, 2, 100);
        assert!((done.secs() - 1.0).abs() < 1e-12);
        assert_eq!(net.bytes_cross_rack(), 100);
        // A second cross-rack transfer from the same rack contends on the
        // uplink even though it uses a different sender NIC.
        let done2 = net.transfer(SimTime(0.0), 1, 3, 100);
        assert!((done2.secs() - 2.0).abs() < 1e-12, "uplink contention, got {done2}");
    }

    #[test]
    fn sender_nic_serializes_two_outgoing() {
        let mut net = Network::new(4, cfg_small());
        let d1 = net.transfer(SimTime(0.0), 0, 1, 100);
        let d2 = net.transfer(SimTime(0.0), 0, 1, 100);
        assert!(d2.secs() > d1.secs());
        assert!((d2.secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn receiver_nic_serializes_two_incoming() {
        let mut net = Network::new(4, cfg_small());
        net.transfer(SimTime(0.0), 0, 1, 100);
        let d2 = net.transfer(SimTime(0.0), 2, 1, 100);
        // Different rack for node 2, but the shared constraint is node 1's
        // inbound NIC.
        assert!((d2.secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn local_transfer_is_free() {
        let mut net = Network::new(2, cfg_small());
        let d = net.transfer(SimTime(5.0), 1, 1, 1_000_000);
        assert_eq!(d.secs(), 5.0);
        assert_eq!(net.transfers(), 0);
    }

    #[test]
    fn default_config_matches_paper_hardware() {
        let cfg = NetworkConfig::default();
        assert_eq!(cfg.nodes_per_rack, 20);
        // 1 GbE ≈ 117 MB/s.
        assert!((cfg.nic_bw / (1024.0 * 1024.0) - 117.0).abs() < 1e-9);
        let net = Network::new(40, cfg);
        assert_eq!(net.racks(), 2);
    }
}
