//! Simulated time and the deterministic event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated wall-clock time in seconds.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct SimTime(pub f64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0.0);

    #[inline]
    pub fn secs(self) -> f64 {
        self.0
    }

    #[inline]
    pub fn after(self, dt: f64) -> SimTime {
        debug_assert!(dt >= 0.0, "negative delay {dt}");
        SimTime(self.0 + dt)
    }

    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

struct Scheduled<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest time pops first;
        // ties break by insertion order (lower seq first) for determinism.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue.
///
/// Events at equal times pop in insertion order, so simulations are fully
/// reproducible run to run.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> EventQueue<E> {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: SimTime::ZERO, popped: 0 }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.popped
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` precedes the current simulation time (causality).
    pub fn push(&mut self, at: SimTime, event: E) {
        assert!(
            at.0 >= self.now.0,
            "scheduling into the past: at={} now={}",
            at.0,
            self.now.0
        );
        self.heap.push(Scheduled { time: at.0, seq: self.seq, event });
        self.seq += 1;
    }

    /// Schedule `event` `dt` seconds from now.
    pub fn push_after(&mut self, dt: f64, event: E) {
        let at = self.now.after(dt);
        self.push(at, event);
    }

    /// Pop the earliest event, advancing simulated time to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = SimTime(s.time);
        self.popped += 1;
        Some((self.now, s.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(3.0), "c");
        q.push(SimTime(1.0), "a");
        q.push(SimTime(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now().secs(), 3.0);
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(SimTime(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn time_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push_after(1.5, ());
        assert_eq!(q.now().secs(), 0.0);
        q.pop();
        assert_eq!(q.now().secs(), 1.5);
        q.push_after(0.5, ());
        q.pop();
        assert_eq!(q.now().secs(), 2.0);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime(2.0), ());
        q.pop();
        q.push(SimTime(1.0), ());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime(1.0), 1);
        q.push(SimTime(4.0), 4);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime(2.0), 2);
        q.push(SimTime(3.0), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
    }
}
