//! Serial resources: disks, network pipes, and task slots.
//!
//! The simulator models every contended device as a FIFO *serial
//! resource*: work reserves the device from `max(now, busy_until)` for a
//! duration derived from the device's rate, and the device's horizon
//! advances. This captures queueing delay to first order, which is what
//! drives all of the paper's load-balancing results.

use crate::time::SimTime;
use std::collections::VecDeque;

/// A FIFO device with a service rate in bytes/second and a fixed per-
/// request overhead in seconds (disk seek, network round-trip).
#[derive(Clone, Debug)]
pub struct SerialResource {
    rate: f64,
    per_request: f64,
    busy_until: f64,
    /// Total busy seconds accumulated (utilization accounting).
    busy_total: f64,
    requests: u64,
    bytes: u64,
}

impl SerialResource {
    /// `rate` in bytes/second, `per_request` fixed seconds per request.
    pub fn new(rate: f64, per_request: f64) -> SerialResource {
        assert!(rate > 0.0, "rate must be positive");
        assert!(per_request >= 0.0);
        SerialResource { rate, per_request, busy_until: 0.0, busy_total: 0.0, requests: 0, bytes: 0 }
    }

    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Earliest time the device is free.
    pub fn available_at(&self, now: SimTime) -> SimTime {
        SimTime(self.busy_until.max(now.secs()))
    }

    /// Reserve the device for `bytes` starting no earlier than `now`;
    /// returns the completion time. FIFO: requests are served in
    /// submission order because each reservation pushes the horizon.
    pub fn reserve(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = self.busy_until.max(now.secs());
        let dur = self.per_request + bytes as f64 / self.rate;
        self.busy_until = start + dur;
        self.busy_total += dur;
        self.requests += 1;
        self.bytes += bytes;
        SimTime(self.busy_until)
    }

    /// Reserve a fixed duration (e.g. CPU work) instead of bytes.
    pub fn reserve_duration(&mut self, now: SimTime, dur: f64) -> SimTime {
        assert!(dur >= 0.0);
        let start = self.busy_until.max(now.secs());
        self.busy_until = start + dur;
        self.busy_total += dur;
        self.requests += 1;
        SimTime(self.busy_until)
    }

    pub fn busy_seconds(&self) -> f64 {
        self.busy_total
    }

    pub fn requests(&self) -> u64 {
        self.requests
    }

    pub fn bytes_served(&self) -> u64 {
        self.bytes
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.secs() <= 0.0 {
            0.0
        } else {
            (self.busy_total / horizon.secs()).min(1.0)
        }
    }
}

/// A counting pool of identical task slots on one node (the paper gives
/// every server 8 map and 8 reduce slots). Work items queue FIFO when all
/// slots are taken; the pool tracks, per slot, how many tasks it ran (for
/// the tasks-per-slot stdev metric in §III-C).
#[derive(Clone, Debug)]
pub struct SlotPool {
    /// Completion horizon per slot: slot i is free at `free_at[i]`.
    free_at: Vec<f64>,
    /// Tasks executed per slot.
    executed: Vec<u64>,
    /// FIFO of queued (submit_time) used only for stats.
    queued: VecDeque<f64>,
}

impl SlotPool {
    pub fn new(slots: usize) -> SlotPool {
        assert!(slots > 0, "a node needs at least one slot");
        SlotPool { free_at: vec![0.0; slots], executed: vec![0; slots], queued: VecDeque::new() }
    }

    pub fn slots(&self) -> usize {
        self.free_at.len()
    }

    /// Earliest time any slot is free.
    pub fn next_free(&self, now: SimTime) -> SimTime {
        let m = self.free_at.iter().cloned().fold(f64::INFINITY, f64::min);
        SimTime(m.max(now.secs()))
    }

    /// Number of slots idle at `now`.
    pub fn idle_slots(&self, now: SimTime) -> usize {
        self.free_at.iter().filter(|&&t| t <= now.secs()).count()
    }

    /// Run a task of `dur` seconds, starting when the earliest slot frees
    /// (FIFO). Returns (start, completion).
    pub fn run(&mut self, now: SimTime, dur: f64) -> (SimTime, SimTime) {
        assert!(dur >= 0.0);
        // Earliest-free slot; ties broken by index for determinism.
        let (idx, &free) = self
            .free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(&b.0)))
            .expect("pool non-empty");
        let start = free.max(now.secs());
        let end = start + dur;
        self.free_at[idx] = end;
        self.executed[idx] += 1;
        if start > now.secs() {
            self.queued.push_back(now.secs());
        }
        (SimTime(start), SimTime(end))
    }

    /// Tasks executed by each slot.
    pub fn tasks_per_slot(&self) -> &[u64] {
        &self.executed
    }

    /// Total tasks executed on this node.
    pub fn total_tasks(&self) -> u64 {
        self.executed.iter().sum()
    }

    /// Completion horizon of the busiest slot.
    pub fn makespan(&self) -> SimTime {
        SimTime(self.free_at.iter().cloned().fold(0.0, f64::max))
    }

    /// How many tasks had to queue (found no idle slot at submit).
    pub fn queued_count(&self) -> usize {
        self.queued.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_resource_fifo_queueing() {
        let mut d = SerialResource::new(100.0, 0.0);
        let t1 = d.reserve(SimTime(0.0), 100); // 1s of work
        assert_eq!(t1.secs(), 1.0);
        // Second request at t=0 queues behind the first.
        let t2 = d.reserve(SimTime(0.0), 200);
        assert_eq!(t2.secs(), 3.0);
        // A request after the queue drains starts immediately.
        let t3 = d.reserve(SimTime(10.0), 100);
        assert_eq!(t3.secs(), 11.0);
        assert_eq!(d.requests(), 3);
        assert_eq!(d.bytes_served(), 400);
        assert!((d.busy_seconds() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn per_request_overhead_applies() {
        let mut d = SerialResource::new(1000.0, 0.5);
        let t = d.reserve(SimTime(0.0), 1000);
        assert!((t.secs() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_bounded() {
        let mut d = SerialResource::new(10.0, 0.0);
        d.reserve(SimTime(0.0), 50); // 5s busy
        assert!((d.utilization(SimTime(10.0)) - 0.5).abs() < 1e-12);
        assert_eq!(d.utilization(SimTime(0.0)), 0.0);
        assert_eq!(d.utilization(SimTime(1.0)), 1.0);
    }

    #[test]
    fn slot_pool_parallelism() {
        let mut p = SlotPool::new(2);
        let (s1, e1) = p.run(SimTime(0.0), 10.0);
        let (s2, e2) = p.run(SimTime(0.0), 10.0);
        // Two slots run in parallel.
        assert_eq!((s1.secs(), e1.secs()), (0.0, 10.0));
        assert_eq!((s2.secs(), e2.secs()), (0.0, 10.0));
        // Third task queues on the earliest-free slot.
        let (s3, e3) = p.run(SimTime(0.0), 5.0);
        assert_eq!((s3.secs(), e3.secs()), (10.0, 15.0));
        assert_eq!(p.total_tasks(), 3);
        assert_eq!(p.queued_count(), 1);
        assert_eq!(p.makespan().secs(), 15.0);
    }

    #[test]
    fn slot_pool_idle_accounting() {
        let mut p = SlotPool::new(4);
        assert_eq!(p.idle_slots(SimTime(0.0)), 4);
        p.run(SimTime(0.0), 2.0);
        assert_eq!(p.idle_slots(SimTime(1.0)), 3);
        assert_eq!(p.idle_slots(SimTime(2.0)), 4);
        assert_eq!(p.next_free(SimTime(0.0)).secs(), 0.0);
    }

    #[test]
    fn tasks_spread_across_slots() {
        let mut p = SlotPool::new(3);
        for _ in 0..9 {
            p.run(SimTime(0.0), 1.0);
        }
        assert_eq!(p.tasks_per_slot(), &[3, 3, 3]);
    }
}
