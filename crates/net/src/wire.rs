//! Length-prefixed binary framing for the transport plane.
//!
//! Every RPC (request or response) travels as one **frame**:
//!
//! ```text
//! offset  size  field
//! 0       2     magic 0xEC 0x1F
//! 2       1     dir   (0 = request, 1 = response)
//! 3       1     kind  (message discriminant, see `rpc`)
//! 4       8     correlation id, u64 LE
//! 12      4     body length, u32 LE (capped at MAX_BODY)
//! 16      N     body
//! ```
//!
//! The codec is hand-rolled and total: any byte sequence either decodes
//! or yields a typed [`CodecError`] — it never panics and never reads
//! past the declared length. [`FrameDecoder`] is the streaming half:
//! bytes may arrive split at arbitrary boundaries (TCP gives no message
//! framing) and frames are yielded exactly when complete.

use std::fmt;

/// Frame header magic: "EClipse 1 Frame".
pub const MAGIC: [u8; 2] = [0xEC, 0x1F];
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 16;
/// Upper bound on a frame body. A corrupt length prefix must not make
/// the decoder buffer gigabytes before failing.
pub const MAX_BODY: usize = 64 * 1024 * 1024;

/// Frame direction: request or response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    Request,
    Response,
}

/// One decoded frame (header + raw body); `rpc` decodes the body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    pub dir: Dir,
    pub kind: u8,
    pub corr: u64,
    pub body: Vec<u8>,
}

/// Typed decode failure. Every malformed input maps to one of these —
/// the codec has no panicking path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended inside a header or declared body.
    Truncated,
    /// The first two bytes are not [`MAGIC`].
    BadMagic([u8; 2]),
    /// Direction byte is neither 0 nor 1.
    BadDir(u8),
    /// Unknown message discriminant for the given direction.
    BadKind { dir: Dir, kind: u8 },
    /// Declared body length exceeds [`MAX_BODY`].
    Oversize(u64),
    /// A length-prefixed field overruns the body.
    FieldOverrun,
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// An enum/option tag byte has no meaning.
    BadTag(u8),
    /// Bytes left over after the last field of a message.
    Trailing(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            CodecError::BadDir(d) => write!(f, "bad direction byte {d}"),
            CodecError::BadKind { dir, kind } => write!(f, "unknown {dir:?} kind {kind}"),
            CodecError::Oversize(n) => write!(f, "declared body of {n} bytes exceeds cap"),
            CodecError::FieldOverrun => write!(f, "field length overruns body"),
            CodecError::BadUtf8 => write!(f, "string field is not UTF-8"),
            CodecError::BadTag(t) => write!(f, "invalid tag byte {t}"),
            CodecError::Trailing(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serialize a frame. The inverse of [`decode_frame`].
pub fn encode_frame(dir: Dir, kind: u8, corr: u64, body: &[u8]) -> Vec<u8> {
    debug_assert!(body.len() <= MAX_BODY);
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    let at = begin_frame(&mut out, dir, kind, corr);
    out.extend_from_slice(body);
    end_frame(&mut out, at);
    out
}

/// Start a frame in `out` (clearing it): write the header with a zero
/// length placeholder and return the body start offset. The body is
/// then appended directly to `out` (no intermediate body buffer) and
/// sealed with [`end_frame`]. This is the zero-copy encode path: `out`
/// is typically a reused thread-local scratch buffer.
pub fn begin_frame(out: &mut Vec<u8>, dir: Dir, kind: u8, corr: u64) -> usize {
    out.clear();
    out.extend_from_slice(&MAGIC);
    out.push(match dir {
        Dir::Request => 0,
        Dir::Response => 1,
    });
    out.push(kind);
    out.extend_from_slice(&corr.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    HEADER_LEN
}

/// Seal a frame begun with [`begin_frame`]: patch the body length now
/// that the body has been appended.
pub fn end_frame(out: &mut [u8], body_start: usize) {
    let len = out.len() - body_start;
    debug_assert!(len <= MAX_BODY);
    out[body_start - 4..body_start].copy_from_slice(&(len as u32).to_le_bytes());
}

/// Strict single-frame decode: the input must hold exactly one complete
/// frame. Truncation is an error here (the streaming path uses
/// [`FrameDecoder`], where partial input just means "wait for more").
pub fn decode_frame(buf: &[u8]) -> Result<Frame, CodecError> {
    let (frame, used) = decode_frame_prefix(buf)?.ok_or(CodecError::Truncated)?;
    if used != buf.len() {
        return Err(CodecError::Trailing(buf.len() - used));
    }
    Ok(frame)
}

/// Decode one frame from the front of `buf` if it is complete.
/// `Ok(None)` means the prefix is valid so far but incomplete.
fn decode_frame_prefix(buf: &[u8]) -> Result<Option<(Frame, usize)>, CodecError> {
    if buf.len() < 2 {
        // Validate what we can see even before the header is whole, so
        // garbage fails fast instead of stalling a connection.
        if !buf.is_empty() && buf[0] != MAGIC[0] {
            return Err(CodecError::BadMagic([buf[0], 0]));
        }
        return Ok(None);
    }
    if buf[0..2] != MAGIC {
        return Err(CodecError::BadMagic([buf[0], buf[1]]));
    }
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let dir = match buf[2] {
        0 => Dir::Request,
        1 => Dir::Response,
        d => return Err(CodecError::BadDir(d)),
    };
    let kind = buf[3];
    let corr = u64::from_le_bytes(buf[4..12].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")) as u64;
    if len > MAX_BODY as u64 {
        return Err(CodecError::Oversize(len));
    }
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let body = buf[HEADER_LEN..total].to_vec();
    Ok(Some((Frame { dir, kind, corr, body }, total)))
}

/// Streaming frame decoder: feed byte chunks cut at arbitrary
/// boundaries, pull complete frames. Once an error is returned the
/// stream is unrecoverable (resynchronizing on a byte stream with a
/// corrupt length prefix is not possible) and the connection must be
/// dropped.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append raw bytes received from the wire.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pull the next complete frame, if any.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, CodecError> {
        match decode_frame_prefix(&self.buf)? {
            Some((frame, used)) => {
                self.buf.drain(..used);
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }

    /// Bytes buffered but not yet consumed (an incomplete trailing
    /// frame, or nothing).
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

// ---- field-level primitives used by the rpc codec ------------------

/// Sequential reader over a frame body. All methods are bounds-checked
/// and return [`CodecError`] instead of slicing out of range.
pub struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.at.checked_add(n).ok_or(CodecError::FieldOverrun)?;
        if end > self.buf.len() {
            return Err(CodecError::FieldOverrun);
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// LEB128 unsigned varint, at most 10 bytes. A continuation chain
    /// that would overflow 64 bits is a typed error, not a wrap.
    pub fn varint(&mut self) -> Result<u64, CodecError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            let low = (b & 0x7f) as u64;
            if shift == 63 && low > 1 {
                return Err(CodecError::BadTag(b));
            }
            v |= low << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(CodecError::BadTag(0x80))
    }

    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// A byte field whose length prefix is a varint (shuffle records use
    /// this: lengths are small, u32 prefixes were mostly zero bytes).
    pub fn vbytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.varint()?;
        let len = usize::try_from(len).map_err(|_| CodecError::FieldOverrun)?;
        self.take(len)
    }

    pub fn string(&mut self) -> Result<String, CodecError> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    /// The message must consume its body exactly.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.at != self.buf.len() {
            return Err(CodecError::Trailing(self.buf.len() - self.at));
        }
        Ok(())
    }
}

/// Body writer mirroring [`Reader`]. Appends to a caller-owned buffer
/// (usually a reused thread-local scratch holding the frame under
/// construction) instead of allocating its own.
pub struct Writer<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> Writer<'a> {
    pub fn new(buf: &'a mut Vec<u8>) -> Writer<'a> {
        Writer { buf }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// LEB128 unsigned varint. Inverse of [`Reader::varint`].
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                return;
            }
            self.buf.push(b | 0x80);
        }
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Varint-length-prefixed bytes. Inverse of [`Reader::vbytes`].
    pub fn vbytes(&mut self, v: &[u8]) {
        self.varint(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    pub fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let raw = encode_frame(Dir::Request, 3, 42, b"payload");
        let f = decode_frame(&raw).unwrap();
        assert_eq!(f.dir, Dir::Request);
        assert_eq!(f.kind, 3);
        assert_eq!(f.corr, 42);
        assert_eq!(f.body, b"payload");
    }

    #[test]
    fn streaming_across_boundaries() {
        let a = encode_frame(Dir::Request, 1, 1, b"first");
        let b = encode_frame(Dir::Response, 2, 2, b"second body");
        let mut all = a.clone();
        all.extend_from_slice(&b);
        // Feed one byte at a time: frames appear exactly when complete.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for &byte in &all {
            dec.feed(&[byte]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].body, b"first");
        assert_eq!(got[1].corr, 2);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut raw = encode_frame(Dir::Request, 1, 1, b"x");
        raw[0] = 0x00;
        assert!(matches!(decode_frame(&raw), Err(CodecError::BadMagic(_))));
    }

    #[test]
    fn oversize_length_rejected_before_buffering() {
        let mut raw = encode_frame(Dir::Request, 1, 1, b"x");
        raw[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&raw);
        assert!(matches!(dec.next_frame(), Err(CodecError::Oversize(_))));
    }

    #[test]
    fn truncation_is_typed_in_strict_mode() {
        let raw = encode_frame(Dir::Request, 1, 1, b"hello");
        for cut in 0..raw.len() {
            assert_eq!(decode_frame(&raw[..cut]), Err(CodecError::Truncated), "cut={cut}");
        }
    }

    #[test]
    fn reader_bounds_checked() {
        let mut body = Vec::new();
        Writer::new(&mut body).string("hi");
        // Corrupt the length prefix to point past the end.
        let mut bad = body.clone();
        bad[0] = 200;
        let mut r = Reader::new(&bad);
        assert_eq!(r.string(), Err(CodecError::FieldOverrun));
    }

    #[test]
    fn varint_roundtrip_edges() {
        let samples = [0u64, 1, 127, 128, 300, 16383, 16384, u32::MAX as u64, u64::MAX];
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf);
        for &v in &samples {
            w.varint(v);
        }
        let mut r = Reader::new(&buf);
        for &v in &samples {
            assert_eq!(r.varint(), Ok(v));
        }
        r.finish().unwrap();
    }

    #[test]
    fn varint_overflow_is_typed() {
        // Eleven continuation bytes can never encode a u64.
        let bad = [0xffu8; 11];
        assert!(matches!(Reader::new(&bad).varint(), Err(CodecError::BadTag(_))));
        // Truncated mid-varint is an overrun, not a panic.
        let cut = [0x80u8];
        assert_eq!(Reader::new(&cut).varint(), Err(CodecError::FieldOverrun));
    }

    #[test]
    fn in_place_frame_matches_encode_frame() {
        let body = b"same bytes either way";
        let via_vec = encode_frame(Dir::Response, 2, 99, body);
        let mut scratch = vec![0xAA; 4]; // stale contents must be cleared
        let at = begin_frame(&mut scratch, Dir::Response, 2, 99);
        scratch.extend_from_slice(body);
        end_frame(&mut scratch, at);
        assert_eq!(scratch, via_vec);
    }
}
