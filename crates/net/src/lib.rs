//! # eclipse-net
//!
//! The transport plane: every inter-node interaction of the live
//! executor — DHT block reads/writes, replica sync, iCache/oCache
//! lookups, shuffle delivery, heartbeats, task assignment — travels as
//! a framed RPC over a pluggable [`Transport`].
//!
//! Two backends implement the same trait and speak the same wire codec:
//!
//! * [`MemTransport`] — deterministic in-memory links with injectable
//!   delay, drops, and one-way partitions. Every frame is still encoded
//!   and decoded through the real codec, so the in-memory backend is
//!   simultaneously the chaos harness *and* a byte-level oracle for the
//!   TCP path: whatever survives it has round-tripped the real wire
//!   format.
//! * [`TcpTransport`] — real loopback TCP: length-prefixed frames,
//!   per-peer connection pooling, request/response correlation ids,
//!   per-RPC timeouts with bounded retry and exponential backoff
//!   (mirroring the executor's task attempt ledger conventions).
//!
//! Retries make delivery *at-least-once*; receivers that cannot
//! tolerate duplicates deduplicate by the sequence numbers carried in
//! the messages ([`Rpc::ShuffleBatch`]'s `(task, attempt, seq)`).

pub mod demux;
pub mod mem;
pub mod rpc;
pub mod tcp;
pub mod wire;

pub use demux::Demux;
pub use mem::MemTransport;
pub use rpc::{Rpc, RpcKind, RpcReply};
pub use tcp::TcpTransport;
pub use wire::{CodecError, Dir, Frame, FrameDecoder};

use eclipse_ring::NodeId;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Node id used for driver/client-originated calls (upload, recovery
/// orchestration, failure-detection pings). Never a ring member.
pub const CLIENT: NodeId = NodeId(u32::MAX);

/// A transport-level failure, after the backend's own retry budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// No response within the per-RPC timeout on any attempt (includes
    /// one-way partitions, which are indistinguishable from silence).
    Timeout { to: NodeId },
    /// The peer's endpoint is closed or was never bound: connection
    /// refused / reset. Fails fast, no retry.
    ConnectionClosed { to: NodeId },
    /// The peer answered with garbage the codec rejected.
    Codec(CodecError),
    /// The peer's handler reported a failure.
    Remote(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Timeout { to } => write!(f, "rpc to node {} timed out", to.0),
            NetError::ConnectionClosed { to } => {
                write!(f, "connection to node {} closed", to.0)
            }
            NetError::Codec(e) => write!(f, "codec error: {e}"),
            NetError::Remote(msg) => write!(f, "remote error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<CodecError> for NetError {
    fn from(e: CodecError) -> NetError {
        NetError::Codec(e)
    }
}

/// Serving side of an endpoint: maps one decoded request to a reply.
/// Handlers may issue their own [`Transport::call`]s (e.g. `ReplicaSync`
/// pushes a `PutBlock` to the re-replication target).
pub type RpcHandler = Arc<dyn Fn(Rpc) -> RpcReply + Send + Sync>;

/// Retry/backoff budget for one logical RPC plus the link-tuning knobs
/// shared by both backends.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Mirrors the executor's
    /// bounded task-attempt ledger.
    pub max_attempts: u32,
    /// Backoff before retry `k` is `base << (k-1)`, capped at `cap`.
    pub backoff_base: Duration,
    pub backoff_cap: Duration,
    /// Max unacknowledged one-way sends ([`Transport::send`]) per
    /// destination before the sender blocks. Bounds both memory held for
    /// retransmission and the damage one dead peer can absorb.
    pub ack_window: usize,
    /// Disable Nagle's algorithm on every pooled TCP connection. Small
    /// control frames (heartbeats, acks) should not wait out a
    /// coalescing timer.
    pub nodelay: bool,
    /// Per-connection read buffer handed to the reader thread.
    pub read_buf_bytes: usize,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            backoff_base: Duration::from_micros(200),
            backoff_cap: Duration::from_millis(50),
            ack_window: 64,
            nodelay: true,
            read_buf_bytes: 64 * 1024,
        }
    }
}

impl RetryPolicy {
    /// Backoff to sleep before attempt `attempt` (0-based; attempt 0 has
    /// none).
    pub fn backoff(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let exp = self.backoff_base.saturating_mul(1u32 << (attempt - 1).min(16));
        exp.min(self.backoff_cap)
    }
}

/// Number of request kinds (`RpcKind` discriminants are 1..=KINDS).
pub const KINDS: usize = 10;

/// Cumulative transport counters (atomics: hot-path friendly). The
/// per-kind arrays attribute request traffic to its plane (shuffle vs
/// block vs cache vs control); reply bytes land in `bytes_sent` only.
#[derive(Debug, Default)]
pub struct NetStats {
    pub bytes_sent: AtomicU64,
    pub rpcs: AtomicU64,
    pub rpc_retries: AtomicU64,
    pub timeouts: AtomicU64,
    /// Bytes of `bytes_sent` that were retransmissions (second and later
    /// attempts of a call or windowed slot). `bytes_sent -
    /// retrans_bytes` is the first-send payload volume.
    pub retrans_bytes: AtomicU64,
    pub kind_rpcs: [AtomicU64; KINDS],
    pub kind_bytes: [AtomicU64; KINDS],
    /// Per-kind share of [`NetStats::retrans_bytes`].
    pub kind_retrans_bytes: [AtomicU64; KINDS],
}

/// A point-in-time copy of [`NetStats`], subtractable so callers can
/// attribute traffic to one job.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetSnapshot {
    pub bytes_sent: u64,
    pub rpcs: u64,
    pub rpc_retries: u64,
    pub timeouts: u64,
    pub retrans_bytes: u64,
    pub kind_rpcs: [u64; KINDS],
    pub kind_bytes: [u64; KINDS],
    pub kind_retrans_bytes: [u64; KINDS],
}

impl NetStats {
    /// Account one request frame of `bytes` wire bytes, attributed to
    /// its kind. Retransmissions count again: the bytes really crossed
    /// the wire twice.
    pub fn count_request(&self, kind: RpcKind, bytes: u64) {
        self.rpcs.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        let i = kind as usize - 1;
        self.kind_rpcs[i].fetch_add(1, Ordering::Relaxed);
        self.kind_bytes[i].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Account one *retransmitted* request frame: counted in the normal
    /// totals (the bytes crossed the wire again) and additionally in the
    /// retransmission split.
    pub fn count_retransmit(&self, kind: RpcKind, bytes: u64) {
        self.count_request(kind, bytes);
        self.retrans_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.kind_retrans_bytes[kind as usize - 1].fetch_add(bytes, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> NetSnapshot {
        let mut kind_rpcs = [0u64; KINDS];
        let mut kind_bytes = [0u64; KINDS];
        let mut kind_retrans_bytes = [0u64; KINDS];
        for i in 0..KINDS {
            kind_rpcs[i] = self.kind_rpcs[i].load(Ordering::Relaxed);
            kind_bytes[i] = self.kind_bytes[i].load(Ordering::Relaxed);
            kind_retrans_bytes[i] = self.kind_retrans_bytes[i].load(Ordering::Relaxed);
        }
        NetSnapshot {
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            rpcs: self.rpcs.load(Ordering::Relaxed),
            rpc_retries: self.rpc_retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            retrans_bytes: self.retrans_bytes.load(Ordering::Relaxed),
            kind_rpcs,
            kind_bytes,
            kind_retrans_bytes,
        }
    }
}

impl NetSnapshot {
    /// Counters accumulated since `earlier`.
    pub fn since(&self, earlier: NetSnapshot) -> NetSnapshot {
        let mut kind_rpcs = [0u64; KINDS];
        let mut kind_bytes = [0u64; KINDS];
        let mut kind_retrans_bytes = [0u64; KINDS];
        for i in 0..KINDS {
            kind_rpcs[i] = self.kind_rpcs[i].saturating_sub(earlier.kind_rpcs[i]);
            kind_bytes[i] = self.kind_bytes[i].saturating_sub(earlier.kind_bytes[i]);
            kind_retrans_bytes[i] =
                self.kind_retrans_bytes[i].saturating_sub(earlier.kind_retrans_bytes[i]);
        }
        NetSnapshot {
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            rpcs: self.rpcs.saturating_sub(earlier.rpcs),
            rpc_retries: self.rpc_retries.saturating_sub(earlier.rpc_retries),
            timeouts: self.timeouts.saturating_sub(earlier.timeouts),
            retrans_bytes: self.retrans_bytes.saturating_sub(earlier.retrans_bytes),
            kind_rpcs,
            kind_bytes,
            kind_retrans_bytes,
        }
    }

    /// `(requests, request_bytes)` attributed to one kind.
    pub fn kind(&self, kind: RpcKind) -> (u64, u64) {
        let i = kind as usize - 1;
        (self.kind_rpcs[i], self.kind_bytes[i])
    }

    /// Retransmitted request bytes attributed to one kind.
    pub fn kind_retrans(&self, kind: RpcKind) -> u64 {
        self.kind_retrans_bytes[kind as usize - 1]
    }
}

/// Handle for one windowed one-way send, redeemed by
/// [`Transport::flush`]. Dropping a ticket without flushing leaks its
/// window slot until the transport reaps it on endpoint close — always
/// flush, even when the result is ignored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendTicket {
    pub to: NodeId,
    pub id: u64,
}

/// A pluggable node-to-node RPC fabric.
///
/// Implementations are synchronous request/response with internal
/// bounded retry; per-link FIFO ordering holds for calls issued from
/// one thread (a call completes before the next starts). The one-way
/// lane ([`Transport::send`]/[`Transport::flush`]) relaxes this:
/// windowed sends may be acknowledged, retried, and *delivered* out of
/// order, so receivers must tolerate reordering (shuffle dedup does).
pub trait Transport: Send + Sync {
    /// Register `node`'s serving handler, (re)opening its endpoint.
    fn bind(&self, node: NodeId, handler: RpcHandler);

    /// Issue one RPC and wait for the reply. Retries transparently on
    /// timeout up to the retry budget; fails fast with
    /// [`NetError::ConnectionClosed`] when the peer's endpoint is
    /// closed.
    fn call(&self, from: NodeId, to: NodeId, rpc: Rpc) -> Result<RpcReply, NetError>;

    /// Fire-and-track one-way lane for acknowledged but non-blocking
    /// delivery (`ShuffleBatch`, `CachePut`): enqueue the request
    /// without waiting for its round-trip. Blocks only when `to`'s ack
    /// window ([`RetryPolicy::ack_window`]) is full. The returned
    /// ticket MUST eventually be passed to [`Transport::flush`].
    fn send(&self, from: NodeId, to: NodeId, rpc: Rpc) -> Result<SendTicket, NetError>;

    /// Redeem tickets from [`Transport::send`]: wait until each is
    /// acknowledged (retrying within the retry budget) or failed. Ok
    /// means every ticket's request was delivered and acknowledged
    /// with a non-error reply. Each ticket's window slot is released
    /// regardless of outcome.
    fn flush(&self, tickets: &[SendTicket]) -> Result<(), NetError>;

    /// Hint that a batch of [`Transport::send`]s is complete: push any
    /// coalesced-but-unwritten frames onto the wire *without* waiting
    /// for acknowledgements. Callers that park tickets across other
    /// work (deferred flush) should nudge at the batch boundary so the
    /// acks travel while that work runs. Backends that transmit
    /// eagerly need no override.
    fn nudge(&self) {}

    /// True when `to`'s one-way ack window is fully occupied by live
    /// unacknowledged sends — the backpressure signal admission
    /// control couples to ([`RetryPolicy::ack_window`] slots, all in
    /// flight). Transports without a windowed lane never saturate.
    fn window_saturated(&self, to: NodeId) -> bool {
        let _ = to;
        false
    }

    /// Cheap reachability probe (stabilization uses this): can `from`
    /// currently exchange a frame with `to`? Counts as one RPC.
    fn probe(&self, from: NodeId, to: NodeId) -> bool;

    /// Poison a node's endpoints: every in-flight call *to* it is woken
    /// with [`NetError::ConnectionClosed`], and future calls fail fast.
    /// Peers must never hang until heartbeat expiry on a dead endpoint.
    fn close_endpoint(&self, node: NodeId);

    /// Cumulative counters.
    fn stats(&self) -> NetSnapshot;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(0), Duration::ZERO);
        assert_eq!(p.backoff(1), p.backoff_base);
        assert_eq!(p.backoff(2), p.backoff_base * 2);
        assert!(p.backoff(30) <= p.backoff_cap);
    }

    #[test]
    fn snapshot_delta() {
        let s = NetStats::default();
        s.rpcs.store(10, Ordering::Relaxed);
        let a = s.snapshot();
        s.rpcs.store(17, Ordering::Relaxed);
        s.bytes_sent.store(100, Ordering::Relaxed);
        let d = s.snapshot().since(a);
        assert_eq!(d.rpcs, 7);
        assert_eq!(d.bytes_sent, 100);
    }
}
