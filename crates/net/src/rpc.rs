//! The transport plane's RPC message set and its body codec.
//!
//! Ten request messages cover every inter-node interaction the live
//! executor performs (see DESIGN.md §8e for the full table):
//!
//! | message        | plane    | carries                                  |
//! |----------------|----------|------------------------------------------|
//! | `GetBlock`     | data     | block id                                 |
//! | `PutBlock`     | data     | block id + payload                       |
//! | `ReplicaSync`  | recovery | block id + re-replication target         |
//! | `CacheGet`     | cache    | cache key                                |
//! | `CachePut`     | cache    | cache key + payload + TTL                |
//! | `ShuffleBatch` | shuffle  | (task, attempt, seq) + records           |
//! | `Heartbeat`    | control  | sender + logical clock                   |
//! | `TaskAssign`   | control  | task id + block id                       |
//! | `RangeHandoff` | elastic  | cache key + payload (re-homed entry)     |
//! | `BlockPull`    | elastic  | block id + source holder to pull from    |
//!
//! `ShuffleBatch` carries a per-attempt sequence number so receivers can
//! deduplicate at-least-once delivery (a retry after a lost *response*
//! would otherwise double-deliver the batch).

use crate::wire::{self, CodecError, Dir, Frame, Reader, Writer};
use bytes::Bytes;
use eclipse_cache::{CacheKey, OutputTag};
use eclipse_dhtfs::BlockId;
use eclipse_ring::NodeId;
use eclipse_util::HashKey;

/// Request message kinds (the `kind` byte of request frames).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RpcKind {
    GetBlock = 1,
    PutBlock = 2,
    ReplicaSync = 3,
    CacheGet = 4,
    CachePut = 5,
    ShuffleBatch = 6,
    Heartbeat = 7,
    TaskAssign = 8,
    RangeHandoff = 9,
    BlockPull = 10,
}

/// A request travelling node → node.
#[derive(Clone, Debug, PartialEq)]
pub enum Rpc {
    /// Read a block replica from the receiver's local store.
    GetBlock { block: BlockId },
    /// Write a block replica into the receiver's local store.
    PutBlock { block: BlockId, data: Bytes },
    /// Re-replication: the receiver (a surviving holder) pushes its copy
    /// of `block` to node `to`.
    ReplicaSync { block: BlockId, to: NodeId },
    /// iCache/oCache lookup on the receiver's shard.
    CacheGet { key: CacheKey },
    /// iCache/oCache insert on the receiver's shard, attributed to
    /// `tenant` for per-tenant quota accounting (0 = untagged). `pin`
    /// marks materialized epoch state the LRU must never evict.
    CachePut { key: CacheKey, data: Bytes, ttl: Option<f64>, tenant: u16, pin: bool },
    /// One shuffle batch: the complete output of `(task, attempt)` for
    /// `partition`, `seq`-numbered within the attempt for dedup.
    /// `epoch` scopes the batch to one wave of a continuous job (0 for
    /// batch jobs); receivers ack-drop batches from stale epochs.
    ShuffleBatch {
        task: u32,
        attempt: u32,
        seq: u32,
        epoch: u32,
        partition: u32,
        records: Vec<(String, String)>,
    },
    /// Failure-detector ping, doubling as the map-progress carrier for
    /// speculative execution. `task == u32::MAX` is a pure liveness
    /// ping; otherwise `progress` is the sender's map progress for
    /// `task` in promille (0..=1000).
    Heartbeat { from: NodeId, clock: u64, task: u32, progress: u32 },
    /// Control plane: assign map task `task` (input block `block`) to
    /// the receiver.
    TaskAssign { task: u32, block: BlockId },
    /// Elastic membership: push one cache entry whose ring range was
    /// re-homed onto the receiver by a join or leave. Sent over the
    /// windowed one-way lane — a lost handoff is only a future miss.
    RangeHandoff { key: CacheKey, data: Bytes },
    /// Elastic membership: the receiver (the new ideal holder) pulls
    /// its missing replica of `block` from the holder `from` and
    /// stores it locally, answering `Synced` with the byte count.
    BlockPull { block: BlockId, from: NodeId },
}

/// A response travelling back.
#[derive(Clone, Debug, PartialEq)]
pub enum RpcReply {
    /// Generic success for messages with no payload to return.
    Ack,
    /// `GetBlock` result: the payload, or `None` when the receiver holds
    /// no copy.
    Block(Option<Bytes>),
    /// `CacheGet` result.
    CacheValue(Option<Bytes>),
    /// `ReplicaSync` succeeded; `bytes` were copied.
    Synced { bytes: u64 },
    /// `ReplicaSync` failed: the receiver holds no source copy.
    Missing,
    /// Handler-level failure, with a human-readable reason.
    Error(String),
}

impl Rpc {
    pub fn kind(&self) -> RpcKind {
        match self {
            Rpc::GetBlock { .. } => RpcKind::GetBlock,
            Rpc::PutBlock { .. } => RpcKind::PutBlock,
            Rpc::ReplicaSync { .. } => RpcKind::ReplicaSync,
            Rpc::CacheGet { .. } => RpcKind::CacheGet,
            Rpc::CachePut { .. } => RpcKind::CachePut,
            Rpc::ShuffleBatch { .. } => RpcKind::ShuffleBatch,
            Rpc::Heartbeat { .. } => RpcKind::Heartbeat,
            Rpc::TaskAssign { .. } => RpcKind::TaskAssign,
            Rpc::RangeHandoff { .. } => RpcKind::RangeHandoff,
            Rpc::BlockPull { .. } => RpcKind::BlockPull,
        }
    }

    /// Serialize into a complete request frame (allocating). The hot
    /// paths use [`Rpc::encode_into`] with a reused scratch buffer.
    pub fn encode(&self, corr: u64) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(corr, &mut out);
        out
    }

    /// Serialize into `out` (cleared first): header and body are written
    /// in place, with no intermediate body buffer and no copy. In debug
    /// builds the finished frame is decoded and re-encoded to assert it
    /// round-trips to the very same bytes.
    pub fn encode_into(&self, corr: u64, out: &mut Vec<u8>) {
        self.encode_raw(corr, out);
        #[cfg(debug_assertions)]
        {
            let frame = wire::decode_frame(out).expect("encoded request frame must decode");
            let back = Rpc::decode(&frame).expect("encoded request body must decode");
            let mut again = Vec::new();
            back.encode_raw(corr, &mut again);
            debug_assert_eq!(&again, out, "request frame must round-trip to identical bytes");
        }
    }

    fn encode_raw(&self, corr: u64, out: &mut Vec<u8>) {
        let at = wire::begin_frame(out, Dir::Request, self.kind() as u8, corr);
        let mut w = Writer::new(out);
        match self {
            Rpc::GetBlock { block } => put_block_id(&mut w, *block),
            Rpc::PutBlock { block, data } => {
                put_block_id(&mut w, *block);
                w.bytes(data);
            }
            Rpc::ReplicaSync { block, to } => {
                put_block_id(&mut w, *block);
                w.u32(to.0);
            }
            Rpc::CacheGet { key } => put_cache_key(&mut w, key),
            Rpc::CachePut { key, data, ttl, tenant, pin } => {
                put_cache_key(&mut w, key);
                w.bytes(data);
                match ttl {
                    None => w.u8(0),
                    Some(t) => {
                        w.u8(1);
                        w.f64(*t);
                    }
                }
                w.u32(*tenant as u32);
                w.u8(u8::from(*pin));
            }
            Rpc::ShuffleBatch { task, attempt, seq, epoch, partition, records } => {
                w.u32(*task);
                w.u32(*attempt);
                w.u32(*seq);
                w.u32(*epoch);
                w.u32(*partition);
                // Shuffle records dominate wire bytes, so they get the
                // compact encoding: varint lengths, and keys front-coded
                // against their predecessor (combined spills arrive
                // sorted, so consecutive keys share long prefixes).
                w.varint(records.len() as u64);
                let mut prev: &[u8] = &[];
                for (k, v) in records {
                    let kb = k.as_bytes();
                    let shared = common_prefix(prev, kb);
                    w.varint(shared as u64);
                    w.vbytes(&kb[shared..]);
                    w.vbytes(v.as_bytes());
                    prev = kb;
                }
            }
            Rpc::Heartbeat { from, clock, task, progress } => {
                w.u32(from.0);
                w.u64(*clock);
                w.u32(*task);
                w.u32(*progress);
            }
            Rpc::TaskAssign { task, block } => {
                w.u32(*task);
                put_block_id(&mut w, *block);
            }
            Rpc::RangeHandoff { key, data } => {
                put_cache_key(&mut w, key);
                w.bytes(data);
            }
            Rpc::BlockPull { block, from } => {
                put_block_id(&mut w, *block);
                w.u32(from.0);
            }
        }
        wire::end_frame(out, at);
    }

    /// Decode a request from a frame. Total: every malformed body maps
    /// to a [`CodecError`].
    pub fn decode(frame: &Frame) -> Result<Rpc, CodecError> {
        if frame.dir != Dir::Request {
            return Err(CodecError::BadKind { dir: frame.dir, kind: frame.kind });
        }
        let mut r = Reader::new(&frame.body);
        let rpc = match frame.kind {
            k if k == RpcKind::GetBlock as u8 => Rpc::GetBlock { block: get_block_id(&mut r)? },
            k if k == RpcKind::PutBlock as u8 => {
                let block = get_block_id(&mut r)?;
                let data = Bytes::copy_from_slice(r.bytes()?);
                Rpc::PutBlock { block, data }
            }
            k if k == RpcKind::ReplicaSync as u8 => {
                let block = get_block_id(&mut r)?;
                let to = NodeId(r.u32()?);
                Rpc::ReplicaSync { block, to }
            }
            k if k == RpcKind::CacheGet as u8 => Rpc::CacheGet { key: get_cache_key(&mut r)? },
            k if k == RpcKind::CachePut as u8 => {
                let key = get_cache_key(&mut r)?;
                let data = Bytes::copy_from_slice(r.bytes()?);
                let ttl = match r.u8()? {
                    0 => None,
                    1 => Some(r.f64()?),
                    t => return Err(CodecError::BadTag(t)),
                };
                let tenant =
                    u16::try_from(r.u32()?).map_err(|_| CodecError::FieldOverrun)?;
                let pin = match r.u8()? {
                    0 => false,
                    1 => true,
                    t => return Err(CodecError::BadTag(t)),
                };
                Rpc::CachePut { key, data, ttl, tenant, pin }
            }
            k if k == RpcKind::ShuffleBatch as u8 => {
                let task = r.u32()?;
                let attempt = r.u32()?;
                let seq = r.u32()?;
                let epoch = r.u32()?;
                let partition = r.u32()?;
                let n = usize::try_from(r.varint()?).map_err(|_| CodecError::FieldOverrun)?;
                // Cap pre-allocation: a corrupt count must not OOM.
                let mut records = Vec::with_capacity(n.min(64 * 1024));
                let mut prev: Vec<u8> = Vec::new();
                for _ in 0..n {
                    let shared = usize::try_from(r.varint()?)
                        .map_err(|_| CodecError::FieldOverrun)?;
                    if shared > prev.len() {
                        return Err(CodecError::FieldOverrun);
                    }
                    let suffix = r.vbytes()?;
                    prev.truncate(shared);
                    prev.extend_from_slice(suffix);
                    let key =
                        String::from_utf8(prev.clone()).map_err(|_| CodecError::BadUtf8)?;
                    let value = String::from_utf8(r.vbytes()?.to_vec())
                        .map_err(|_| CodecError::BadUtf8)?;
                    records.push((key, value));
                }
                Rpc::ShuffleBatch { task, attempt, seq, epoch, partition, records }
            }
            k if k == RpcKind::Heartbeat as u8 => {
                let from = NodeId(r.u32()?);
                let clock = r.u64()?;
                let task = r.u32()?;
                let progress = r.u32()?;
                Rpc::Heartbeat { from, clock, task, progress }
            }
            k if k == RpcKind::TaskAssign as u8 => {
                let task = r.u32()?;
                let block = get_block_id(&mut r)?;
                Rpc::TaskAssign { task, block }
            }
            k if k == RpcKind::RangeHandoff as u8 => {
                let key = get_cache_key(&mut r)?;
                let data = Bytes::copy_from_slice(r.bytes()?);
                Rpc::RangeHandoff { key, data }
            }
            k if k == RpcKind::BlockPull as u8 => {
                let block = get_block_id(&mut r)?;
                let from = NodeId(r.u32()?);
                Rpc::BlockPull { block, from }
            }
            kind => return Err(CodecError::BadKind { dir: frame.dir, kind }),
        };
        r.finish()?;
        Ok(rpc)
    }
}

/// Response message kinds (the `kind` byte of response frames).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum ReplyKind {
    Ack = 1,
    Block = 2,
    CacheValue = 3,
    Synced = 4,
    Missing = 5,
    Error = 6,
}

impl RpcReply {
    fn kind(&self) -> ReplyKind {
        match self {
            RpcReply::Ack => ReplyKind::Ack,
            RpcReply::Block(_) => ReplyKind::Block,
            RpcReply::CacheValue(_) => ReplyKind::CacheValue,
            RpcReply::Synced { .. } => ReplyKind::Synced,
            RpcReply::Missing => ReplyKind::Missing,
            RpcReply::Error(_) => ReplyKind::Error,
        }
    }

    /// Serialize into a complete response frame (allocating). The hot
    /// paths use [`RpcReply::encode_into`] with a reused scratch buffer.
    pub fn encode(&self, corr: u64) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(corr, &mut out);
        out
    }

    /// Serialize into `out` (cleared first), header and body in place.
    /// Debug builds assert the frame round-trips to identical bytes.
    pub fn encode_into(&self, corr: u64, out: &mut Vec<u8>) {
        self.encode_raw(corr, out);
        #[cfg(debug_assertions)]
        {
            let frame = wire::decode_frame(out).expect("encoded response frame must decode");
            let back = RpcReply::decode(&frame).expect("encoded response body must decode");
            let mut again = Vec::new();
            back.encode_raw(corr, &mut again);
            debug_assert_eq!(&again, out, "response frame must round-trip to identical bytes");
        }
    }

    fn encode_raw(&self, corr: u64, out: &mut Vec<u8>) {
        let at = wire::begin_frame(out, Dir::Response, self.kind() as u8, corr);
        let mut w = Writer::new(out);
        match self {
            RpcReply::Ack | RpcReply::Missing => {}
            RpcReply::Block(data) | RpcReply::CacheValue(data) => match data {
                None => w.u8(0),
                Some(d) => {
                    w.u8(1);
                    w.bytes(d);
                }
            },
            RpcReply::Synced { bytes } => w.u64(*bytes),
            RpcReply::Error(msg) => w.string(msg),
        }
        wire::end_frame(out, at);
    }

    /// Decode a response from a frame.
    pub fn decode(frame: &Frame) -> Result<RpcReply, CodecError> {
        if frame.dir != Dir::Response {
            return Err(CodecError::BadKind { dir: frame.dir, kind: frame.kind });
        }
        let mut r = Reader::new(&frame.body);
        let reply = match frame.kind {
            k if k == ReplyKind::Ack as u8 => RpcReply::Ack,
            k if k == ReplyKind::Missing as u8 => RpcReply::Missing,
            k if k == ReplyKind::Block as u8 => RpcReply::Block(get_opt_bytes(&mut r)?),
            k if k == ReplyKind::CacheValue as u8 => {
                RpcReply::CacheValue(get_opt_bytes(&mut r)?)
            }
            k if k == ReplyKind::Synced as u8 => RpcReply::Synced { bytes: r.u64()? },
            k if k == ReplyKind::Error as u8 => RpcReply::Error(r.string()?),
            kind => return Err(CodecError::BadKind { dir: frame.dir, kind }),
        };
        r.finish()?;
        Ok(reply)
    }
}

/// Length of the longest common prefix of `a` and `b`, in bytes.
fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

fn put_block_id(w: &mut Writer, id: BlockId) {
    w.u64(id.file.0);
    w.u64(id.index);
}

fn get_block_id(r: &mut Reader<'_>) -> Result<BlockId, CodecError> {
    let file = HashKey(r.u64()?);
    let index = r.u64()?;
    Ok(BlockId { file, index })
}

fn put_cache_key(w: &mut Writer, key: &CacheKey) {
    match key {
        CacheKey::Input(h) => {
            w.u8(0);
            w.u64(h.0);
        }
        CacheKey::Output(tag) => {
            w.u8(1);
            w.string(tag.app());
            w.string(tag.tag());
        }
    }
}

fn get_cache_key(r: &mut Reader<'_>) -> Result<CacheKey, CodecError> {
    match r.u8()? {
        0 => Ok(CacheKey::Input(HashKey(r.u64()?))),
        1 => {
            let app = r.string()?;
            let tag = r.string()?;
            Ok(CacheKey::Output(OutputTag::new(app, tag)))
        }
        t => Err(CodecError::BadTag(t)),
    }
}

fn get_opt_bytes(r: &mut Reader<'_>) -> Result<Option<Bytes>, CodecError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(Bytes::copy_from_slice(r.bytes()?))),
        t => Err(CodecError::BadTag(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::decode_frame;

    fn roundtrip_rpc(rpc: Rpc) {
        let raw = rpc.encode(99);
        let frame = decode_frame(&raw).unwrap();
        assert_eq!(frame.corr, 99);
        assert_eq!(Rpc::decode(&frame).unwrap(), rpc);
    }

    fn roundtrip_reply(reply: RpcReply) {
        let raw = reply.encode(7);
        let frame = decode_frame(&raw).unwrap();
        assert_eq!(RpcReply::decode(&frame).unwrap(), reply);
    }

    fn bid(i: u64) -> BlockId {
        BlockId { file: HashKey(0xDEAD_BEEF), index: i }
    }

    #[test]
    fn every_request_roundtrips() {
        roundtrip_rpc(Rpc::GetBlock { block: bid(3) });
        roundtrip_rpc(Rpc::PutBlock { block: bid(1), data: Bytes::from(vec![1, 2, 3]) });
        roundtrip_rpc(Rpc::ReplicaSync { block: bid(2), to: NodeId(5) });
        roundtrip_rpc(Rpc::CacheGet { key: CacheKey::Input(HashKey(17)) });
        roundtrip_rpc(Rpc::CacheGet { key: CacheKey::Output(OutputTag::new("app", "t1")) });
        roundtrip_rpc(Rpc::CachePut {
            key: CacheKey::Input(HashKey(9)),
            data: Bytes::from(vec![0; 100]),
            ttl: Some(2.5),
            tenant: 0,
            pin: false,
        });
        roundtrip_rpc(Rpc::CachePut {
            key: CacheKey::Input(HashKey(10)),
            data: Bytes::new(),
            ttl: None,
            tenant: u16::MAX,
            pin: true,
        });
        roundtrip_rpc(Rpc::ShuffleBatch {
            task: 4,
            attempt: 1,
            seq: 2,
            epoch: 0,
            partition: 0,
            records: vec![("k".into(), "v".into()), ("".into(), "with space".into())],
        });
        roundtrip_rpc(Rpc::ShuffleBatch {
            task: 4,
            attempt: 0,
            seq: 0,
            epoch: u32::MAX,
            partition: 3,
            records: vec![],
        });
        roundtrip_rpc(Rpc::Heartbeat { from: NodeId(3), clock: u64::MAX, task: u32::MAX, progress: 0 });
        roundtrip_rpc(Rpc::Heartbeat { from: NodeId(3), clock: 0, task: 12, progress: 640 });
        roundtrip_rpc(Rpc::TaskAssign { task: 77, block: bid(0) });
        roundtrip_rpc(Rpc::RangeHandoff {
            key: CacheKey::Output(OutputTag::new("app", "t2")),
            data: Bytes::from(vec![7; 33]),
        });
        roundtrip_rpc(Rpc::RangeHandoff {
            key: CacheKey::Input(HashKey(21)),
            data: Bytes::new(),
        });
        roundtrip_rpc(Rpc::BlockPull { block: bid(6), from: NodeId(4) });
    }

    #[test]
    fn every_reply_roundtrips() {
        roundtrip_reply(RpcReply::Ack);
        roundtrip_reply(RpcReply::Block(None));
        roundtrip_reply(RpcReply::Block(Some(Bytes::from(vec![9; 64]))));
        roundtrip_reply(RpcReply::CacheValue(Some(Bytes::new())));
        roundtrip_reply(RpcReply::Synced { bytes: 1 << 40 });
        roundtrip_reply(RpcReply::Missing);
        roundtrip_reply(RpcReply::Error("source gone".into()));
    }

    #[test]
    fn request_reply_direction_enforced() {
        let raw = Rpc::GetBlock { block: bid(0) }.encode(1);
        let frame = decode_frame(&raw).unwrap();
        assert!(matches!(RpcReply::decode(&frame), Err(CodecError::BadKind { .. })));
        let raw = RpcReply::Ack.encode(1);
        let frame = decode_frame(&raw).unwrap();
        assert!(matches!(Rpc::decode(&frame), Err(CodecError::BadKind { .. })));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut raw =
            Rpc::Heartbeat { from: NodeId(0), clock: 1, task: u32::MAX, progress: 0 }.encode(1);
        // Grow the body by one byte and fix up the length prefix.
        raw.push(0xFF);
        let len = (raw.len() - wire::HEADER_LEN) as u32;
        raw[12..16].copy_from_slice(&len.to_le_bytes());
        let frame = decode_frame(&raw).unwrap();
        assert!(matches!(Rpc::decode(&frame), Err(CodecError::Trailing(1))));
    }
}
