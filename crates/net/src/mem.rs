//! Deterministic in-memory transport backend — the chaos harness and
//! the test oracle for the wire protocol.
//!
//! Links are synchronous per-caller FIFO channels (a call completes
//! before the caller issues the next, so per-link ordering is inherent)
//! with three injectable fault classes, all keyed by directed link:
//!
//! * **one-way partitions** — frames from `a` to `b` vanish; the caller
//!   observes silence (a timeout), exactly like a real network cut;
//! * **drops** — the next `n` frames on a link (or of one [`RpcKind`]
//!   anywhere) are lost in flight, exercising the retry path;
//! * **delays** — every frame on a link waits before delivery,
//!   modelling a slow or congested path. A delayed (blocked) call is
//!   woken immediately when the destination endpoint closes, so peers
//!   get a connection error instead of waiting out the delay.
//!
//! Every frame — even node-local ones — is encoded and decoded through
//! the real codec ([`Rpc::encode`]/[`Rpc::decode`]), so a run over this
//! backend proves the byte-level protocol, not just the call graph:
//! it is the deterministic oracle the loopback-TCP suite compares
//! against.

use crate::rpc::{Rpc, RpcKind, RpcReply};
use crate::{
    NetError, NetSnapshot, NetStats, RetryPolicy, RpcHandler, SendTicket, Transport,
};
use eclipse_ring::NodeId;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

#[derive(Default)]
struct MemState {
    endpoints: HashMap<u32, RpcHandler>,
    closed: HashSet<u32>,
    /// Directed partitions: frames from `.0` to `.1` are silently lost.
    cut: HashSet<(u32, u32)>,
    /// Per-link delivery delay.
    delays: HashMap<(u32, u32), Duration>,
    /// Per-link drop tokens: the next `n` frames on the link vanish.
    drop_link: HashMap<(u32, u32), u32>,
    /// Per-kind drop tokens: the next `n` frames of this kind vanish,
    /// whatever link they travel.
    drop_kind: HashMap<RpcKind, u32>,
}

/// Outcome of one delivery attempt.
enum Attempt {
    Deliver(RpcHandler),
    /// Endpoint closed or never bound — fail fast, no retry.
    Closed,
    /// Frame lost (drop token or partition) — retry after backoff.
    Lost,
}

/// One windowed one-way send awaiting [`Transport::flush`]. Delivery
/// is attempted inline at [`Transport::send`] time (in-memory links
/// have no propagation delay to overlap), so the slot usually holds a
/// settled result; a frame the fault machinery ate stays unsettled and
/// is retried — through the real codec again — at flush.
struct MemSlot {
    from: NodeId,
    to: NodeId,
    kind: RpcKind,
    frame: Vec<u8>,
    /// Transmissions so far (>= 1).
    attempts: u32,
    done: Option<Result<(), NetError>>,
}

/// The in-memory [`Transport`] backend. See the module docs.
pub struct MemTransport {
    state: Mutex<MemState>,
    /// Notified when an endpoint closes or faults heal, so blocked
    /// (delayed / partitioned) calls re-check their destination.
    wake: Condvar,
    stats: NetStats,
    policy: RetryPolicy,
    /// Silence window: how long a call waits for a reply that a
    /// partition is eating before declaring the attempt timed out.
    rpc_timeout: Duration,
    corr: AtomicU64,
    /// Outstanding one-way sends, keyed by ticket id. Because delivery
    /// is inline, the ack window never blocks here — the window
    /// semantics TCP enforces are trivially satisfied.
    sends: Mutex<HashMap<u64, MemSlot>>,
    /// Base seed for derived fault timing (see [`Self::seed_faults`]).
    /// 0 = unseeded; seeded delays then fall back to `rpc_timeout / 2`.
    fault_seed: AtomicU64,
}

/// SplitMix64 — the same mixer the workspace RNG uses for seed
/// expansion. Fault timing derives from it so a delay is a pure
/// function of (seed, link), never of the host's wall clock.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Default for MemTransport {
    fn default() -> MemTransport {
        MemTransport::new()
    }
}

impl MemTransport {
    pub fn new() -> MemTransport {
        MemTransport::with_policy(RetryPolicy::default())
    }

    pub fn with_policy(policy: RetryPolicy) -> MemTransport {
        MemTransport {
            state: Mutex::new(MemState::default()),
            wake: Condvar::new(),
            stats: NetStats::default(),
            policy,
            rpc_timeout: Duration::from_millis(2),
            corr: AtomicU64::new(1),
            sends: Mutex::new(HashMap::new()),
            fault_seed: AtomicU64::new(0),
        }
    }

    // ---- fault injection (the chaos API) ---------------------------

    /// Cut the directed link `from → to`: frames vanish, callers see
    /// timeouts. The reverse direction is unaffected.
    pub fn cut_one_way(&self, from: NodeId, to: NodeId) {
        self.state.lock().unwrap().cut.insert((from.0, to.0));
    }

    /// Heal one directed link.
    pub fn heal_link(&self, from: NodeId, to: NodeId) {
        self.state.lock().unwrap().cut.remove(&(from.0, to.0));
        self.wake.notify_all();
    }

    /// Heal every partition, delay, and pending drop.
    pub fn heal_all(&self) {
        let mut st = self.state.lock().unwrap();
        st.cut.clear();
        st.delays.clear();
        st.drop_link.clear();
        st.drop_kind.clear();
        drop(st);
        self.wake.notify_all();
    }

    /// Delay every frame on `from → to` by `delay` before delivery.
    pub fn delay_link(&self, from: NodeId, to: NodeId, delay: Duration) {
        self.state.lock().unwrap().delays.insert((from.0, to.0), delay);
    }

    /// Drop the next `n` frames on the directed link.
    pub fn drop_next_on_link(&self, from: NodeId, to: NodeId, n: u32) {
        *self.state.lock().unwrap().drop_link.entry((from.0, to.0)).or_insert(0) += n;
    }

    /// Drop the next `n` frames of `kind`, on any link.
    pub fn drop_rpcs(&self, kind: RpcKind, n: u32) {
        *self.state.lock().unwrap().drop_kind.entry(kind).or_insert(0) += n;
    }

    /// Seed the derived fault-timing source. After this,
    /// [`Self::delay_link_seeded`] installs link delays computed purely
    /// from `(seed, link, salt)` — the same seed yields the same delay
    /// schedule on any host, independent of core count or wall clock.
    pub fn seed_faults(&self, seed: u64) {
        self.fault_seed.store(seed, Ordering::Release);
    }

    /// Install a deterministic delay on `from → to` and return it.
    ///
    /// The duration is a pure function of the fault seed, the directed
    /// link, and `salt` (inject the same link twice in one schedule
    /// with different salts for different delays), drawn from
    /// `[rpc_timeout/4, rpc_timeout]`. Staying at or below the RPC
    /// silence window keeps a seeded delay strictly benign: it slows a
    /// link without ever masquerading as a partition, so the fault is
    /// replayable timing pressure rather than a host-speed-dependent
    /// outage. Unseeded transports get the midpoint (`rpc_timeout/2`).
    pub fn delay_link_seeded(&self, from: NodeId, to: NodeId, salt: u64) -> Duration {
        let quarter = self.rpc_timeout.as_micros().max(4) as u64 / 4;
        let seed = self.fault_seed.load(Ordering::Acquire);
        let micros = if seed == 0 {
            quarter * 2
        } else {
            let link = (from.0 as u64) << 32 | to.0 as u64;
            let z = splitmix64(seed ^ link.rotate_left(17) ^ salt);
            quarter + z % (3 * quarter + 1)
        };
        let delay = Duration::from_micros(micros);
        self.delay_link(from, to, delay);
        delay
    }

    /// The delay currently installed on `from → to`, if any.
    pub fn link_delay(&self, from: NodeId, to: NodeId) -> Option<Duration> {
        self.state.lock().unwrap().delays.get(&(from.0, to.0)).copied()
    }

    /// The silence window after which a partitioned call attempt is
    /// declared timed out (the unit seeded fault timing is scaled by).
    pub fn rpc_timeout(&self) -> Duration {
        self.rpc_timeout
    }

    /// Is the endpoint bound and open? (Diagnostics/tests.)
    pub fn endpoint_open(&self, node: NodeId) -> bool {
        let st = self.state.lock().unwrap();
        st.endpoints.contains_key(&node.0) && !st.closed.contains(&node.0)
    }

    // ---- delivery --------------------------------------------------

    /// One attempt: consult faults, wait out delays (interruptibly),
    /// and hand back the destination handler on success.
    fn attempt(&self, from: NodeId, to: NodeId, kind: RpcKind) -> Attempt {
        let mut st = self.state.lock().unwrap();
        if !st.endpoints.contains_key(&to.0) || st.closed.contains(&to.0) {
            return Attempt::Closed;
        }
        // Drop tokens consume frames that would otherwise be sent.
        if let Some(n) = st.drop_kind.get_mut(&kind) {
            if *n > 0 {
                *n -= 1;
                return Attempt::Lost;
            }
        }
        if let Some(n) = st.drop_link.get_mut(&(from.0, to.0)) {
            if *n > 0 {
                *n -= 1;
                return Attempt::Lost;
            }
        }
        // A partition is silence: wait out the RPC timeout unless the
        // link heals or the endpoint closes first.
        if st.cut.contains(&(from.0, to.0)) {
            let deadline = Instant::now() + self.rpc_timeout;
            loop {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Attempt::Lost;
                }
                st = self.wake.wait_timeout(st, left).unwrap().0;
                if st.closed.contains(&to.0) {
                    return Attempt::Closed;
                }
                if !st.cut.contains(&(from.0, to.0)) {
                    break;
                }
            }
        }
        // A delay holds the frame in flight; endpoint closure while the
        // frame is in flight kills it (the fail-fast guarantee peers
        // depend on instead of heartbeat expiry).
        if let Some(delay) = st.delays.get(&(from.0, to.0)).copied() {
            let deadline = Instant::now() + delay;
            loop {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                st = self.wake.wait_timeout(st, left).unwrap().0;
                if st.closed.contains(&to.0) {
                    return Attempt::Closed;
                }
                if !st.delays.contains_key(&(from.0, to.0)) {
                    break;
                }
            }
            if !st.endpoints.contains_key(&to.0) || st.closed.contains(&to.0) {
                return Attempt::Closed;
            }
        }
        Attempt::Deliver(st.endpoints[&to.0].clone())
    }

    /// One one-way transmission: run the fault machinery and, on
    /// delivery, the full codec round-trip plus the handler.
    /// `Ok(None)` means the frame was lost (retry later).
    fn transmit_oneway(
        &self,
        from: NodeId,
        to: NodeId,
        kind: RpcKind,
        frame: &[u8],
        retrans: bool,
    ) -> Result<Option<Result<(), NetError>>, NetError> {
        if retrans {
            self.stats.count_retransmit(kind, frame.len() as u64);
        } else {
            self.stats.count_request(kind, frame.len() as u64);
        }
        match self.attempt(from, to, kind) {
            Attempt::Closed => Err(NetError::ConnectionClosed { to }),
            Attempt::Lost => {
                self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                Ok(None)
            }
            Attempt::Deliver(handler) => {
                let decoded = crate::wire::decode_frame(frame)?;
                let req = Rpc::decode(&decoded)?;
                let reply = handler(req);
                let corr = decoded.corr;
                let reply_frame = reply.encode(corr);
                self.stats
                    .bytes_sent
                    .fetch_add(reply_frame.len() as u64, Ordering::Relaxed);
                let decoded = crate::wire::decode_frame(&reply_frame)?;
                let reply = RpcReply::decode(&decoded)?;
                Ok(Some(match reply {
                    RpcReply::Error(msg) => Err(NetError::Remote(msg)),
                    _ => Ok(()),
                }))
            }
        }
    }
}

impl Transport for MemTransport {
    fn window_saturated(&self, to: NodeId) -> bool {
        // Delivery is inline, so a slot only stays unsettled when the
        // fault machinery ate its frame; ack_window of those toward one
        // destination is exactly TCP's full-window condition.
        let sends = self.sends.lock().unwrap();
        sends.values().filter(|s| s.to == to && s.done.is_none()).count()
            >= self.policy.ack_window
    }

    fn bind(&self, node: NodeId, handler: RpcHandler) {
        let mut st = self.state.lock().unwrap();
        st.endpoints.insert(node.0, handler);
        st.closed.remove(&node.0);
    }

    fn call(&self, from: NodeId, to: NodeId, rpc: Rpc) -> Result<RpcReply, NetError> {
        let corr = self.corr.fetch_add(1, Ordering::Relaxed);
        let kind = rpc.kind();
        // The real wire bytes, even in memory: this is the oracle.
        let frame = rpc.encode(corr);
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                self.stats.rpc_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.policy.backoff(attempt));
                self.stats.count_retransmit(kind, frame.len() as u64);
            } else {
                self.stats.count_request(kind, frame.len() as u64);
            }
            match self.attempt(from, to, kind) {
                Attempt::Closed => return Err(NetError::ConnectionClosed { to }),
                Attempt::Lost => {
                    self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                Attempt::Deliver(handler) => {
                    let decoded = crate::wire::decode_frame(&frame)?;
                    let req = Rpc::decode(&decoded)?;
                    let reply = handler(req);
                    let reply_frame = reply.encode(corr);
                    self.stats
                        .bytes_sent
                        .fetch_add(reply_frame.len() as u64, Ordering::Relaxed);
                    let decoded = crate::wire::decode_frame(&reply_frame)?;
                    return Ok(RpcReply::decode(&decoded)?);
                }
            }
        }
        Err(NetError::Timeout { to })
    }

    fn send(&self, from: NodeId, to: NodeId, rpc: Rpc) -> Result<SendTicket, NetError> {
        let corr = self.corr.fetch_add(1, Ordering::Relaxed);
        let kind = rpc.kind();
        // The real wire bytes, even in memory: this is the oracle.
        let frame = rpc.encode(corr);
        // Closed destinations fail fast, exactly like `call`.
        let done = self.transmit_oneway(from, to, kind, &frame, false)?;
        self.sends
            .lock()
            .unwrap()
            .insert(corr, MemSlot { from, to, kind, frame, attempts: 1, done });
        Ok(SendTicket { to, id: corr })
    }

    fn flush(&self, tickets: &[SendTicket]) -> Result<(), NetError> {
        let mut first_err: Option<NetError> = None;
        for t in tickets {
            loop {
                // Take what we need under the lock, transmit outside it
                // (the fault machinery may block on delays/partitions).
                let retry = {
                    let mut sends = self.sends.lock().unwrap();
                    match sends.get_mut(&t.id) {
                        None => break, // already redeemed
                        Some(slot) => match &slot.done {
                            Some(res) => {
                                if let Err(e) = res {
                                    first_err.get_or_insert(e.clone());
                                }
                                sends.remove(&t.id);
                                break;
                            }
                            None => {
                                if slot.attempts >= self.policy.max_attempts {
                                    first_err
                                        .get_or_insert(NetError::Timeout { to: slot.to });
                                    sends.remove(&t.id);
                                    break;
                                }
                                slot.attempts += 1;
                                (
                                    slot.from,
                                    slot.to,
                                    slot.kind,
                                    slot.frame.clone(),
                                    slot.attempts,
                                )
                            }
                        },
                    }
                };
                let (from, to, kind, frame, attempts) = retry;
                self.stats.rpc_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.policy.backoff(attempts - 1));
                let outcome = self.transmit_oneway(from, to, kind, &frame, true);
                let mut sends = self.sends.lock().unwrap();
                if let Some(slot) = sends.get_mut(&t.id) {
                    match outcome {
                        Err(e) => slot.done = Some(Err(e)),
                        Ok(Some(res)) => slot.done = Some(res),
                        Ok(None) => {}
                    }
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn probe(&self, from: NodeId, to: NodeId) -> bool {
        // A probe is a minimal heartbeat frame on the wire.
        self.stats
            .count_request(RpcKind::Heartbeat, (crate::wire::HEADER_LEN + 20) as u64);
        let mut st = self.state.lock().unwrap();
        // A probe frame travels the same wire as any Heartbeat, so it
        // consumes drop tokens like one: a dropped probe is transient
        // unreachability (stabilization routes around it and re-probes
        // next round). Before this, `drop_rpcs(Heartbeat, n)` silently
        // never matched the probe path — it counted a Heartbeat request
        // in the stats yet could not be faulted.
        if let Some(n) = st.drop_kind.get_mut(&RpcKind::Heartbeat) {
            if *n > 0 {
                *n -= 1;
                return false;
            }
        }
        if let Some(n) = st.drop_link.get_mut(&(from.0, to.0)) {
            if *n > 0 {
                *n -= 1;
                return false;
            }
        }
        st.endpoints.contains_key(&to.0)
            && !st.closed.contains(&to.0)
            && !st.cut.contains(&(from.0, to.0))
    }

    fn close_endpoint(&self, node: NodeId) {
        self.state.lock().unwrap().closed.insert(node.0);
        self.wake.notify_all();
    }

    fn stats(&self) -> NetSnapshot {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn echo_transport() -> Arc<MemTransport> {
        let t = Arc::new(MemTransport::new());
        for n in 0..4u32 {
            t.bind(
                NodeId(n),
                Arc::new(move |rpc| match rpc {
                    Rpc::Heartbeat { from, clock, .. } => {
                        RpcReply::Error(format!("pong {n} from {} at {clock}", from.0))
                    }
                    _ => RpcReply::Ack,
                }),
            );
        }
        t
    }

    fn hb(from: u32) -> Rpc {
        Rpc::Heartbeat { from: NodeId(from), clock: 9, task: u32::MAX, progress: 0 }
    }

    #[test]
    fn call_roundtrips_through_codec() {
        let t = echo_transport();
        let r = t.call(NodeId(0), NodeId(1), hb(0)).unwrap();
        assert_eq!(r, RpcReply::Error("pong 1 from 0 at 9".into()));
        let s = t.stats();
        assert_eq!(s.rpcs, 1);
        assert!(s.bytes_sent > 0);
        assert_eq!(s.timeouts, 0);
    }

    #[test]
    fn unbound_endpoint_fails_fast() {
        let t = echo_transport();
        let e = t.call(NodeId(0), NodeId(9), hb(0)).unwrap_err();
        assert_eq!(e, NetError::ConnectionClosed { to: NodeId(9) });
        assert_eq!(t.stats().rpc_retries, 0, "no retry on a closed endpoint");
    }

    #[test]
    fn one_way_partition_times_out_one_direction_only() {
        let t = echo_transport();
        t.cut_one_way(NodeId(0), NodeId(1));
        let e = t.call(NodeId(0), NodeId(1), hb(0)).unwrap_err();
        assert_eq!(e, NetError::Timeout { to: NodeId(1) });
        assert!(t.stats().timeouts >= 1);
        // Reverse direction still works.
        assert!(t.call(NodeId(1), NodeId(0), hb(1)).is_ok());
        t.heal_link(NodeId(0), NodeId(1));
        assert!(t.call(NodeId(0), NodeId(1), hb(0)).is_ok());
    }

    #[test]
    fn dropped_frame_is_retried_transparently() {
        let t = echo_transport();
        t.drop_next_on_link(NodeId(0), NodeId(2), 1);
        assert!(t.call(NodeId(0), NodeId(2), hb(0)).is_ok(), "retry absorbs the drop");
        let s = t.stats();
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.rpc_retries, 1);
    }

    #[test]
    fn kind_scoped_drops_hit_only_that_kind() {
        let t = echo_transport();
        t.drop_rpcs(RpcKind::Heartbeat, 1);
        assert!(t.call(NodeId(0), NodeId(1), Rpc::CacheGet {
            key: eclipse_cache::CacheKey::Input(eclipse_util::HashKey(1)),
        }).is_ok());
        assert_eq!(t.stats().timeouts, 0, "other kinds unaffected");
        assert!(t.call(NodeId(0), NodeId(1), hb(0)).is_ok());
        assert_eq!(t.stats().timeouts, 1, "the heartbeat ate the drop token");
    }

    #[test]
    fn close_wakes_delayed_call_with_connection_error() {
        let t = echo_transport();
        t.delay_link(NodeId(0), NodeId(3), Duration::from_secs(30));
        let t2 = Arc::clone(&t);
        let started = Instant::now();
        let h = std::thread::spawn(move || t2.call(NodeId(0), NodeId(3), hb(0)));
        std::thread::sleep(Duration::from_millis(30));
        t.close_endpoint(NodeId(3));
        let res = h.join().unwrap();
        assert_eq!(res.unwrap_err(), NetError::ConnectionClosed { to: NodeId(3) });
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "blocked call must not wait out the delay"
        );
    }

    #[test]
    fn probe_respects_partitions_and_closure() {
        let t = echo_transport();
        assert!(t.probe(NodeId(0), NodeId(1)));
        t.cut_one_way(NodeId(0), NodeId(1));
        assert!(!t.probe(NodeId(0), NodeId(1)));
        assert!(t.probe(NodeId(1), NodeId(0)), "one-way cut");
        t.heal_all();
        t.close_endpoint(NodeId(1));
        assert!(!t.probe(NodeId(0), NodeId(1)));
    }

    fn batch(seq: u32) -> Rpc {
        Rpc::ShuffleBatch {
            task: 1,
            attempt: 0,
            seq,
            epoch: 0,
            partition: 0,
            records: vec![("k".into(), "1".into())],
        }
    }

    #[test]
    fn windowed_send_delivers_inline_and_flush_is_cheap() {
        let t = echo_transport();
        let t1 = t.send(NodeId(0), NodeId(1), batch(0)).unwrap();
        let t2 = t.send(NodeId(0), NodeId(1), batch(1)).unwrap();
        // Both delivered at send time; flush just redeems the slots.
        t.flush(&[t1, t2]).unwrap();
        let s = t.stats();
        assert_eq!(s.kind(RpcKind::ShuffleBatch).0, 2);
        assert_eq!(s.rpc_retries, 0);
        // Tickets are single-redemption; a second flush is a no-op.
        t.flush(&[t1, t2]).unwrap();
    }

    #[test]
    fn dropped_windowed_send_is_retried_at_flush() {
        let t = echo_transport();
        t.drop_rpcs(RpcKind::ShuffleBatch, 1);
        let ticket = t.send(NodeId(0), NodeId(1), batch(0)).unwrap();
        t.flush(&[ticket]).unwrap();
        let s = t.stats();
        assert_eq!(s.timeouts, 1, "first transmission was eaten");
        assert_eq!(s.rpc_retries, 1, "flush retransmitted");
        assert_eq!(s.kind(RpcKind::ShuffleBatch).0, 2, "frame crossed the wire twice");
    }

    #[test]
    fn partitioned_windowed_send_exhausts_budget_then_fails() {
        let t = echo_transport();
        t.cut_one_way(NodeId(0), NodeId(2));
        let ticket = t.send(NodeId(0), NodeId(2), batch(0)).unwrap();
        let e = t.flush(&[ticket]).unwrap_err();
        assert_eq!(e, NetError::Timeout { to: NodeId(2) });
        let s = t.stats();
        assert_eq!(s.rpc_retries as u32, t.policy.max_attempts - 1);
    }

    #[test]
    fn send_to_closed_endpoint_fails_fast() {
        let t = echo_transport();
        t.close_endpoint(NodeId(1));
        let e = t.send(NodeId(0), NodeId(1), batch(0)).unwrap_err();
        assert_eq!(e, NetError::ConnectionClosed { to: NodeId(1) });
    }

    #[test]
    fn remote_handler_error_surfaces_at_flush() {
        let t = echo_transport();
        // The echo handler answers Heartbeat with RpcReply::Error.
        let ticket = t.send(NodeId(0), NodeId(1), hb(0)).unwrap();
        let e = t.flush(&[ticket]).unwrap_err();
        assert!(matches!(e, NetError::Remote(_)));
    }

    #[test]
    fn rebind_reopens_endpoint() {
        let t = echo_transport();
        t.close_endpoint(NodeId(2));
        assert!(t.call(NodeId(0), NodeId(2), hb(0)).is_err());
        t.bind(NodeId(2), Arc::new(|_| RpcReply::Ack));
        assert_eq!(t.call(NodeId(0), NodeId(2), hb(0)).unwrap(), RpcReply::Ack);
    }

    /// One representative message per [`RpcKind`].
    fn sample_rpc(kind: RpcKind) -> Rpc {
        use eclipse_cache::CacheKey;
        use eclipse_dhtfs::BlockId;
        use eclipse_util::HashKey;
        let bid = BlockId { file: HashKey(0xFEED), index: 3 };
        match kind {
            RpcKind::GetBlock => Rpc::GetBlock { block: bid },
            RpcKind::PutBlock => Rpc::PutBlock { block: bid, data: b"abc".as_ref().into() },
            RpcKind::ReplicaSync => Rpc::ReplicaSync { block: bid, to: NodeId(2) },
            RpcKind::CacheGet => Rpc::CacheGet { key: CacheKey::Input(HashKey(7)) },
            RpcKind::CachePut => Rpc::CachePut {
                key: CacheKey::Input(HashKey(7)),
                data: b"xyz".as_ref().into(),
                ttl: None,
                tenant: 0,
                pin: false,
            },
            RpcKind::ShuffleBatch => batch(0),
            RpcKind::Heartbeat => {
                Rpc::Heartbeat { from: NodeId(0), clock: 1, task: u32::MAX, progress: 0 }
            }
            RpcKind::TaskAssign => Rpc::TaskAssign { task: 9, block: bid },
            RpcKind::RangeHandoff => Rpc::RangeHandoff {
                key: CacheKey::Input(HashKey(11)),
                data: b"hand".as_ref().into(),
            },
            RpcKind::BlockPull => Rpc::BlockPull { block: bid, from: NodeId(1) },
        }
    }

    const ALL_KINDS: [RpcKind; 10] = [
        RpcKind::GetBlock,
        RpcKind::PutBlock,
        RpcKind::ReplicaSync,
        RpcKind::CacheGet,
        RpcKind::CachePut,
        RpcKind::ShuffleBatch,
        RpcKind::Heartbeat,
        RpcKind::TaskAssign,
        RpcKind::RangeHandoff,
        RpcKind::BlockPull,
    ];

    /// `drop_rpcs(kind, 1)` must match exactly one frame of `kind` on
    /// the blocking-call path — for every kind, with every other kind
    /// passing untouched while the token is armed.
    #[test]
    fn drop_rpcs_matches_every_kind_on_call_path() {
        let ack = |t: &Arc<MemTransport>| {
            // Re-bind with a handler that always acks (the echo handler
            // answers Heartbeat with Error, which would mask the drop
            // accounting this test pins).
            for n in 0..4u32 {
                t.bind(NodeId(n), Arc::new(|_| RpcReply::Ack));
            }
        };
        for kind in ALL_KINDS {
            let t = echo_transport();
            ack(&t);
            t.drop_rpcs(kind, 1);
            // Every OTHER kind crosses untouched while the token is armed.
            for other in ALL_KINDS.into_iter().filter(|&o| o != kind) {
                t.call(NodeId(0), NodeId(1), sample_rpc(other)).unwrap();
            }
            assert_eq!(t.stats().timeouts, 0, "{kind:?}: token leaked onto another kind");
            // The matching kind eats the token (one timeout, one retry).
            t.call(NodeId(0), NodeId(1), sample_rpc(kind)).unwrap();
            let s = t.stats();
            assert_eq!(s.timeouts, 1, "{kind:?}: drop token never matched on call path");
            assert_eq!(s.rpc_retries, 1, "{kind:?}: retry must absorb the drop");
            // Token spent: the next frame of the kind is clean.
            t.call(NodeId(0), NodeId(1), sample_rpc(kind)).unwrap();
            assert_eq!(t.stats().timeouts, 1, "{kind:?}: token must be consumed");
        }
    }

    /// Same pinning for the windowed one-way lane: the send-time
    /// transmission eats the token and the flush retransmit lands.
    #[test]
    fn drop_rpcs_matches_every_kind_on_send_path() {
        for kind in ALL_KINDS {
            let t = echo_transport();
            for n in 0..4u32 {
                t.bind(NodeId(n), Arc::new(|_| RpcReply::Ack));
            }
            t.drop_rpcs(kind, 1);
            let ticket = t.send(NodeId(0), NodeId(1), sample_rpc(kind)).unwrap();
            t.flush(&[ticket]).unwrap();
            let s = t.stats();
            assert_eq!(s.timeouts, 1, "{kind:?}: drop token never matched on send path");
            assert_eq!(s.rpc_retries, 1, "{kind:?}: flush must retransmit");
            assert_eq!(s.kind(kind).0, 2, "{kind:?}: frame must cross the wire twice");
            assert!(s.kind_retrans(kind) > 0, "{kind:?}: second crossing is a retransmit");
        }
    }

    /// A probe is a Heartbeat frame on the wire, so Heartbeat drop
    /// tokens (and link drop tokens) must fault it like any other
    /// frame. Regression: probe used to bypass the drop machinery
    /// entirely, making `drop_rpcs(Heartbeat, n)` silently unable to
    /// touch stabilization traffic.
    #[test]
    fn probe_consumes_drop_tokens() {
        let t = echo_transport();
        t.drop_rpcs(RpcKind::Heartbeat, 1);
        assert!(!t.probe(NodeId(0), NodeId(1)), "dropped probe looks unreachable");
        assert!(t.probe(NodeId(0), NodeId(1)), "token consumed, next probe clean");
        t.drop_next_on_link(NodeId(0), NodeId(1), 1);
        assert!(!t.probe(NodeId(0), NodeId(1)), "link drop tokens match probes too");
        assert!(t.probe(NodeId(0), NodeId(1)));
        // Other kinds' tokens never touch probes.
        t.drop_rpcs(RpcKind::ShuffleBatch, 1);
        assert!(t.probe(NodeId(0), NodeId(1)));
    }

    /// Seeded link delays are a pure function of (seed, link, salt):
    /// identical across transports and hosts, different per seed, and
    /// always inside `[rpc_timeout/4, rpc_timeout]` so a seeded delay
    /// can never fake a partition.
    #[test]
    fn seeded_delays_are_deterministic_and_bounded() {
        let a = echo_transport();
        let b = echo_transport();
        a.seed_faults(42);
        b.seed_faults(42);
        for (f, to) in [(0u32, 1u32), (1, 2), (2, 3), (3, 0)] {
            let da = a.delay_link_seeded(NodeId(f), NodeId(to), 7);
            let db = b.delay_link_seeded(NodeId(f), NodeId(to), 7);
            assert_eq!(da, db, "same seed, same link, same delay");
            assert_eq!(a.link_delay(NodeId(f), NodeId(to)), Some(da), "delay installed");
            assert!(da >= a.rpc_timeout() / 4 && da <= a.rpc_timeout());
        }
        // A different seed moves at least one link's delay.
        let c = echo_transport();
        c.seed_faults(43);
        let moved = [(0u32, 1u32), (1, 2), (2, 3), (3, 0)].into_iter().any(|(f, to)| {
            c.delay_link_seeded(NodeId(f), NodeId(to), 7)
                != a.link_delay(NodeId(f), NodeId(to)).unwrap()
        });
        assert!(moved, "seed must actually steer the timing");
        // Direction and salt are part of the key.
        let d1 = a.delay_link_seeded(NodeId(1), NodeId(0), 7);
        let d2 = a.delay_link_seeded(NodeId(1), NodeId(0), 8);
        assert!(d1 != a.link_delay(NodeId(0), NodeId(1)).unwrap() || d1 != d2);
        a.heal_all();
        assert_eq!(a.link_delay(NodeId(0), NodeId(1)), None);
    }
}
