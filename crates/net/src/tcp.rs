//! Loopback-TCP transport backend: the same RPCs over a real wire.
//!
//! Each bound node owns a `127.0.0.1` listener and an accept thread;
//! every accepted connection gets a serving thread that decodes request
//! frames with [`FrameDecoder`] (byte boundaries are arbitrary on TCP)
//! and writes correlated response frames.
//!
//! The client side is **pipelined**: all traffic to one destination
//! shares a single connection. Writers interleave frames under a write
//! lock; a dedicated reader thread per connection demultiplexes the
//! response stream by correlation id ([`Demux`]), so any number of
//! worker threads keep RPCs in flight on the same link concurrently.
//! Frames are encoded into reusable thread-local scratch buffers and
//! written with `write_vectored` — the hot path allocates nothing.
//!
//! [`Transport::call`] still blocks its caller for the correlated
//! response (timeouts retry with a fresh correlation id; late replies
//! are dropped as stale). [`Transport::send`] is the one-way lane: the
//! frame is written and tracked in the destination's [`SendWindow`]
//! (bounded by [`RetryPolicy::ack_window`]), and the caller only
//! reconciles acks at [`Transport::flush`] time. Window slots hold the
//! encoded frame and survive connection churn, so a reconnect
//! retransmits exactly the bytes a dead socket swallowed.
//!
//! [`Transport::close_endpoint`] poisons a node: its listener stops
//! accepting, every served connection is shut down (peers blocked on a
//! reply get a reset, not a hang), the pipelined client connection to
//! it is killed, and its send window fails fast. The fail-fast
//! contract matches the in-memory backend.

use crate::demux::{Demux, SendWindow, WinPoll};
use crate::rpc::{Rpc, RpcReply};
use crate::wire::{FrameDecoder, HEADER_LEN};
use crate::{
    NetError, NetSnapshot, NetStats, RetryPolicy, RpcHandler, SendTicket, Transport,
};
use eclipse_ring::NodeId;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poll interval for the accept loop: how quickly shutdown flags are
/// observed by listener threads.
const POLL: Duration = Duration::from_millis(10);

/// Read timeout for serving/reader threads. Shutdown normally breaks
/// these reads *directly* — `close_endpoint`/`Drop` call `shutdown()`
/// on every retained socket — so this poll is only a backstop for the
/// accept/close race where a connection misses the shutdown sweep.
/// Keeping it long matters for throughput: a cluster job holds ~2
/// threads per connection, and waking each one every few milliseconds
/// just to re-check a flag is measurable scheduler churn on small
/// hosts.
const IDLE_POLL: Duration = Duration::from_millis(500);

thread_local! {
    /// Reused per-thread frame scratch for the encode path.
    static SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Write half of a pipelined connection: the socket plus the coalesce
/// buffer for the one-way lane. Windowed frames queue here and go out
/// in one vectored write at the next drain point (a flush, a blocking
/// call on the same link, or the buffer growing past the drain
/// threshold) — a burst of small sends costs one syscall and wakes the
/// destination's serving thread once, not once per frame.
struct WriteHalf {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// One pipelined client connection to a destination, shared by every
/// thread talking to it.
struct PeerConn {
    /// Write half; frames are written whole under this lock.
    writer: Mutex<WriteHalf>,
    /// Correlation-id → waiting caller, settled by the reader thread.
    demux: Demux,
    /// Set when the reader observed EOF/error; the next user replaces
    /// the connection.
    dead: AtomicBool,
}

impl PeerConn {
    fn kill(&self) {
        self.dead.store(true, Ordering::Release);
        let _ = self.writer.lock().stream.shutdown(Shutdown::Both);
    }
}

#[derive(Default)]
struct TcpState {
    addrs: HashMap<u32, SocketAddr>,
    closed: HashSet<u32>,
    /// Per-endpoint shutdown flags (accept + serving threads watch
    /// these).
    flags: HashMap<u32, Arc<AtomicBool>>,
    /// Accepted connections per endpoint, retained (as clones) so
    /// `close_endpoint` can reset peers blocked on a reply.
    served: HashMap<u32, Arc<Mutex<Vec<TcpStream>>>>,
    /// The shared pipelined connection per destination.
    peers: HashMap<u32, Arc<PeerConn>>,
    /// Per-destination ack windows for the one-way lane. Deliberately
    /// *not* tied to a connection: slots outlive socket churn so flush
    /// can retransmit over a fresh connection.
    windows: HashMap<u32, Arc<SendWindow>>,
}

/// The loopback-TCP [`Transport`] backend. See the module docs.
pub struct TcpTransport {
    state: Arc<Mutex<TcpState>>,
    stats: Arc<NetStats>,
    policy: RetryPolicy,
    rpc_timeout: Duration,
    corr: AtomicU64,
    shutdown: Arc<AtomicBool>,
}

impl Default for TcpTransport {
    fn default() -> TcpTransport {
        TcpTransport::new()
    }
}

impl TcpTransport {
    pub fn new() -> TcpTransport {
        TcpTransport::with_policy(RetryPolicy::default())
    }

    pub fn with_policy(policy: RetryPolicy) -> TcpTransport {
        TcpTransport {
            state: Arc::new(Mutex::new(TcpState::default())),
            stats: Arc::new(NetStats::default()),
            policy,
            // Generous: loopback latency is microseconds, but debug
            // builds on loaded single-core machines schedule serving
            // threads late. Retries keep correctness either way.
            rpc_timeout: Duration::from_secs(2),
            corr: AtomicU64::new(1),
            shutdown: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The bound address of a node's listener (tests/diagnostics).
    pub fn addr_of(&self, node: NodeId) -> Option<SocketAddr> {
        self.state.lock().addrs.get(&node.0).copied()
    }

    fn window_of(&self, to: NodeId) -> Arc<SendWindow> {
        let mut st = self.state.lock();
        Arc::clone(
            st.windows
                .entry(to.0)
                .or_insert_with(|| Arc::new(SendWindow::new(self.policy.ack_window))),
        )
    }

    /// The live pipelined connection to `to`, establishing (and
    /// spawning its reader) if the previous one died.
    fn peer(&self, to: NodeId) -> Result<Arc<PeerConn>, NetError> {
        let addr = {
            let st = self.state.lock();
            if st.closed.contains(&to.0) {
                return Err(NetError::ConnectionClosed { to });
            }
            let Some(addr) = st.addrs.get(&to.0).copied() else {
                return Err(NetError::ConnectionClosed { to });
            };
            if let Some(p) = st.peers.get(&to.0) {
                if !p.dead.load(Ordering::Acquire) {
                    return Ok(Arc::clone(p));
                }
            }
            addr
        };
        // Connect outside the state lock; a slow handshake must not
        // stall traffic to other destinations.
        let stream = TcpStream::connect_timeout(&addr, self.rpc_timeout)
            .map_err(|_| NetError::ConnectionClosed { to })?;
        let _ = stream.set_nodelay(self.policy.nodelay);
        let read_half = stream.try_clone().map_err(|_| NetError::ConnectionClosed { to })?;
        let conn = Arc::new(PeerConn {
            writer: Mutex::new(WriteHalf { stream, buf: Vec::new() }),
            demux: Demux::new(),
            dead: AtomicBool::new(false),
        });
        {
            let mut st = self.state.lock();
            if st.closed.contains(&to.0) {
                conn.kill();
                return Err(NetError::ConnectionClosed { to });
            }
            match st.peers.get(&to.0) {
                // Lost a connect race to another thread: use theirs.
                Some(p) if !p.dead.load(Ordering::Acquire) => return Ok(Arc::clone(p)),
                _ => {
                    st.peers.insert(to.0, Arc::clone(&conn));
                }
            }
        }
        let window = self.window_of(to);
        let reader_conn = Arc::clone(&conn);
        let state = Arc::clone(&self.state);
        let global = Arc::clone(&self.shutdown);
        let read_buf = self.policy.read_buf_bytes.max(1024);
        std::thread::spawn(move || {
            reader_loop(read_half, reader_conn, window, state, global, to, read_buf);
        });
        Ok(conn)
    }

    /// Write one whole frame (header + body vectored) to `conn`,
    /// killing it on failure. Any coalesced one-way frames go out
    /// first — the socket carries whole frames in queue order.
    fn write_frame(&self, to: NodeId, conn: &PeerConn, frame: &[u8]) -> Result<(), NetError> {
        let mut w = conn.writer.lock();
        let res = if w.buf.is_empty() {
            write_all_vectored(&mut w.stream, frame)
        } else {
            // One syscall for backlog + frame; the reply to `frame`
            // cannot arrive before the backlog is on the wire anyway.
            w.buf.extend_from_slice(frame);
            let r = {
                let WriteHalf { stream, buf } = &mut *w;
                write_all_vectored(stream, buf)
            };
            w.buf.clear();
            r
        };
        drop(w);
        match res {
            Ok(()) => Ok(()),
            Err(_) => {
                conn.kill();
                self.dead_error(to)
            }
        }
    }

    /// Queue one windowed frame on `conn`'s coalesce buffer, draining
    /// with a single write once the buffer passes the server's read
    /// granularity.
    fn queue_frame(&self, to: NodeId, conn: &PeerConn, frame: &[u8]) -> Result<(), NetError> {
        let mut w = conn.writer.lock();
        w.buf.extend_from_slice(frame);
        if w.buf.len() < self.policy.read_buf_bytes.max(1024) {
            return Ok(());
        }
        let res = {
            let WriteHalf { stream, buf } = &mut *w;
            write_all_vectored(stream, buf)
        };
        w.buf.clear();
        drop(w);
        match res {
            Ok(()) => Ok(()),
            Err(_) => {
                conn.kill();
                self.dead_error(to)
            }
        }
    }

    /// Push `to`'s coalesced one-way frames onto the wire, if a live
    /// connection holds any. Never connects: an empty/absent peer has
    /// nothing to drain.
    fn drain_peer(&self, to: NodeId) {
        let conn = {
            let st = self.state.lock();
            st.peers.get(&to.0).cloned()
        };
        let Some(conn) = conn else { return };
        if conn.dead.load(Ordering::Acquire) {
            return;
        }
        let mut w = conn.writer.lock();
        if w.buf.is_empty() {
            return;
        }
        let res = {
            let WriteHalf { stream, buf } = &mut *w;
            write_all_vectored(stream, buf)
        };
        w.buf.clear();
        drop(w);
        if res.is_err() {
            // Window slots survive; flush retransmits on a fresh
            // connection.
            conn.kill();
        }
    }

    fn dead_error(&self, to: NodeId) -> Result<(), NetError> {
        if self.state.lock().closed.contains(&to.0) {
            Err(NetError::ConnectionClosed { to })
        } else {
            Err(NetError::Timeout { to })
        }
    }

    fn call_inner(
        &self,
        to: NodeId,
        rpc: &Rpc,
        frame: &mut [u8],
    ) -> Result<RpcReply, NetError> {
        let kind = rpc.kind();
        let mut last = NetError::Timeout { to };
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                self.stats.rpc_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.policy.backoff(attempt));
            }
            // A fresh correlation id per attempt: a late reply to a
            // timed-out attempt settles nothing (dropped as stale)
            // instead of being mistaken for the retry's answer.
            let corr = self.corr.fetch_add(1, Ordering::Relaxed);
            frame[4..12].copy_from_slice(&corr.to_le_bytes());
            let conn = self.peer(to)?;
            conn.demux.register(corr);
            if let Err(e) = self.write_frame(to, &conn, frame) {
                conn.demux.cancel(corr);
                match e {
                    NetError::ConnectionClosed { .. } => return Err(e),
                    _ => {
                        self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                        last = e;
                        continue;
                    }
                }
            }
            if attempt > 0 {
                self.stats.count_retransmit(kind, frame.len() as u64);
            } else {
                self.stats.count_request(kind, frame.len() as u64);
            }
            match conn.demux.wait(corr, Instant::now() + self.rpc_timeout) {
                Some(Ok(reply)) => return Ok(reply),
                Some(Err(NetError::Timeout { .. })) | None => {
                    self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    last = NetError::Timeout { to };
                }
                Some(Err(e)) => return Err(e),
            }
        }
        Err(last)
    }
}

fn write_all_vectored(stream: &mut TcpStream, frame: &[u8]) -> std::io::Result<()> {
    let (hdr, body) = frame.split_at(HEADER_LEN.min(frame.len()));
    let mut written = 0usize;
    while written < frame.len() {
        let n = if written < hdr.len() {
            stream.write_vectored(&[IoSlice::new(&hdr[written..]), IoSlice::new(body)])
        } else {
            stream.write(&body[written - hdr.len()..])
        };
        match n {
            Ok(0) => return Err(std::io::Error::from(ErrorKind::WriteZero)),
            Ok(n) => written += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Map a one-way send's reply onto the window-slot result.
fn ack_result(reply: RpcReply) -> Result<(), NetError> {
    match reply {
        RpcReply::Error(msg) => Err(NetError::Remote(msg)),
        _ => Ok(()),
    }
}

/// Per-connection reader: pulls response frames off the socket and
/// settles them — callers first ([`Demux`]), then the destination's
/// [`SendWindow`] (one-way acks). On EOF/error the connection is dead:
/// every waiting caller is failed (closed endpoints fail fast, anything
/// else looks like silence), and window slots are left in place for
/// flush-driven retransmission over a fresh connection.
#[allow(clippy::too_many_arguments)]
fn reader_loop(
    mut stream: TcpStream,
    conn: Arc<PeerConn>,
    window: Arc<SendWindow>,
    state: Arc<Mutex<TcpState>>,
    global: Arc<AtomicBool>,
    to: NodeId,
    read_buf: usize,
) {
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let mut dec = FrameDecoder::new();
    let mut buf = vec![0u8; read_buf];
    let died = loop {
        if global.load(Ordering::Acquire) || conn.dead.load(Ordering::Acquire) {
            break true;
        }
        match stream.read(&mut buf) {
            Ok(0) => break true,
            Ok(n) => {
                dec.feed(&buf[..n]);
                loop {
                    match dec.next_frame() {
                        Ok(Some(frame)) => {
                            let corr = frame.corr;
                            let res = RpcReply::decode(&frame).map_err(NetError::Codec);
                            let claimed = conn.demux.settle(corr, res.clone());
                            if !claimed {
                                // Not a waiting call: a one-way ack, or
                                // stale. The window drops unknown corrs.
                                window.settle(corr, res.and_then(ack_result));
                            }
                        }
                        Ok(None) => break,
                        Err(_) => break,
                    }
                }
                if dec.next_frame().is_err() {
                    // Corrupt stream cannot be resynchronized.
                    break true;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => break true,
        }
    };
    if died {
        conn.kill();
        let err = if state.lock().closed.contains(&to.0) {
            NetError::ConnectionClosed { to }
        } else {
            NetError::Timeout { to }
        };
        conn.demux.fail_all(&err);
        // Window slots survive: flush retransmits them on a new
        // connection (or fails them fast if the endpoint is closed).
        window.wake();
    }
}

impl Transport for TcpTransport {
    fn window_saturated(&self, to: NodeId) -> bool {
        let w = self.state.lock().windows.get(&to.0).cloned();
        w.is_some_and(|w| w.saturated())
    }

    fn bind(&self, node: NodeId, handler: RpcHandler) {
        // Re-binding an open endpoint closes the old one first.
        if self.state.lock().addrs.contains_key(&node.0) {
            self.close_endpoint(node);
        }
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
        listener.set_nonblocking(true).expect("nonblocking listener");
        let addr = listener.local_addr().expect("listener addr");
        let flag = Arc::new(AtomicBool::new(false));
        let served: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let mut st = self.state.lock();
            st.addrs.insert(node.0, addr);
            st.closed.remove(&node.0);
            st.flags.insert(node.0, Arc::clone(&flag));
            st.served.insert(node.0, Arc::clone(&served));
        }
        let global = Arc::clone(&self.shutdown);
        let stats = Arc::clone(&self.stats);
        let policy = self.policy;
        std::thread::spawn(move || {
            accept_loop(listener, handler, flag, global, served, stats, policy);
        });
    }

    fn call(&self, from: NodeId, to: NodeId, rpc: Rpc) -> Result<RpcReply, NetError> {
        let _ = from; // TCP addressing is by destination socket
        SCRATCH.with(|s| match s.try_borrow_mut() {
            Ok(mut buf) => {
                rpc.encode_into(0, &mut buf);
                self.call_inner(to, &rpc, &mut buf)
            }
            // A nested call from inside another call's scope (handler
            // relays) falls back to a fresh buffer.
            Err(_) => {
                let mut buf = Vec::new();
                rpc.encode_into(0, &mut buf);
                self.call_inner(to, &rpc, &mut buf)
            }
        })
    }

    fn send(&self, from: NodeId, to: NodeId, rpc: Rpc) -> Result<SendTicket, NetError> {
        let _ = from;
        let kind = rpc.kind();
        let corr = self.corr.fetch_add(1, Ordering::Relaxed);
        // The frame is kept whole for retransmission, so this lane pays
        // one owned allocation per send (amortized by coalescing).
        let frame = Arc::new(rpc.encode(corr));
        let window = self.window_of(to);
        let deadline = Instant::now() + self.rpc_timeout;
        if !window.try_admit(corr, Arc::clone(&frame), kind, deadline) {
            // Full window: our own coalesced-but-unwritten frames may
            // be exactly what the missing acks are waiting on. Push
            // them out, then park.
            self.drain_peer(to);
            window.admit(corr, Arc::clone(&frame), kind, deadline);
        }
        let ticket = SendTicket { to, id: corr };
        match self.peer(to) {
            Ok(conn) => {
                if self.queue_frame(to, &conn, &frame).is_ok() {
                    self.stats.count_request(kind, frame.len() as u64);
                } else {
                    // Leave the slot in flight: flush retransmits on a
                    // fresh connection.
                    window.bump(corr, Instant::now());
                }
                Ok(ticket)
            }
            Err(e) => {
                // Fail fast, and release the slot we just admitted.
                window.fail(corr, e.clone());
                let _ = window.poll(corr, Instant::now());
                Err(e)
            }
        }
    }

    fn flush(&self, tickets: &[SendTicket]) -> Result<(), NetError> {
        // Coalesced frames for these destinations must be on the wire
        // before anything can wait on their acks.
        let mut drained: Vec<u32> = Vec::new();
        for t in tickets {
            if !drained.contains(&t.to.0) {
                drained.push(t.to.0);
                self.drain_peer(t.to);
            }
        }
        let mut first_err: Option<NetError> = None;
        for t in tickets {
            let window = self.window_of(t.to);
            loop {
                match window.wait_settled(t.id, Instant::now() + self.rpc_timeout) {
                    WinPoll::Unknown | WinPoll::Done(Ok(())) => break,
                    WinPoll::Done(Err(e)) => {
                        first_err.get_or_insert(e);
                        break;
                    }
                    WinPoll::Pending { .. } => continue,
                    WinPoll::Expired { frame, kind, attempts } => {
                        self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                        if attempts >= self.policy.max_attempts {
                            window.fail(t.id, NetError::Timeout { to: t.to });
                            continue;
                        }
                        self.stats.rpc_retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(self.policy.backoff(attempts));
                        match self.peer(t.to) {
                            Ok(conn) => {
                                if self.write_frame(t.to, &conn, &frame).is_ok() {
                                    self.stats.count_retransmit(kind, frame.len() as u64);
                                    window.bump(t.id, Instant::now() + self.rpc_timeout);
                                } else {
                                    window.bump(t.id, Instant::now());
                                }
                            }
                            Err(e) => window.fail(t.id, e),
                        }
                    }
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn nudge(&self) {
        let targets: Vec<u32> = {
            let st = self.state.lock();
            st.peers
                .iter()
                .filter(|(_, p)| !p.dead.load(Ordering::Acquire))
                .map(|(&id, _)| id)
                .collect()
        };
        for id in targets {
            self.drain_peer(NodeId(id));
        }
    }

    fn probe(&self, _from: NodeId, to: NodeId) -> bool {
        self.call(_from, to, Rpc::Heartbeat { from: _from, clock: 0, task: u32::MAX, progress: 0 })
            .is_ok()
    }

    fn close_endpoint(&self, node: NodeId) {
        let (flag, served, peer, window) = {
            let mut st = self.state.lock();
            st.closed.insert(node.0);
            (
                st.flags.remove(&node.0),
                st.served.remove(&node.0),
                st.peers.remove(&node.0),
                st.windows.get(&node.0).cloned(),
            )
        };
        if let Some(flag) = flag {
            flag.store(true, Ordering::Release);
        }
        // Reset peers blocked on a reply from this node.
        if let Some(served) = served {
            for conn in served.lock().drain(..) {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        if let Some(peer) = peer {
            peer.kill();
            peer.demux.fail_all(&NetError::ConnectionClosed { to: node });
        }
        // One-way slots fail fast too: a flush after the crash must not
        // wait out retransmit budgets against a dead endpoint.
        if let Some(window) = window {
            window.fail_all(&NetError::ConnectionClosed { to: node });
        }
    }

    fn stats(&self) -> NetSnapshot {
        self.stats.snapshot()
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        let mut st = self.state.lock();
        for (_, served) in st.served.drain() {
            for conn in served.lock().drain(..) {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        for (_, peer) in st.peers.drain() {
            peer.kill();
            peer.demux.fail_all(&NetError::Timeout { to: NodeId(u32::MAX) });
        }
        for (_, window) in st.windows.drain() {
            window.fail_all(&NetError::Timeout { to: NodeId(u32::MAX) });
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    handler: RpcHandler,
    flag: Arc<AtomicBool>,
    global: Arc<AtomicBool>,
    served: Arc<Mutex<Vec<TcpStream>>>,
    stats: Arc<NetStats>,
    policy: RetryPolicy,
) {
    loop {
        if flag.load(Ordering::Acquire) || global.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((conn, _)) => {
                let _ = conn.set_nodelay(policy.nodelay);
                if let Ok(clone) = conn.try_clone() {
                    served.lock().push(clone);
                }
                let handler = Arc::clone(&handler);
                let flag = Arc::clone(&flag);
                let global = Arc::clone(&global);
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    serve_conn(conn, handler, flag, global, stats, policy.read_buf_bytes)
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => return,
        }
    }
}

/// Serve one accepted connection: decode request frames, run the
/// handler, write correlated responses. Exits on EOF, shutdown flags,
/// or a codec error (a byte stream with a corrupt frame cannot be
/// resynchronized). Pipelined requests on one connection are handled
/// in arrival order; responses go out in the same order.
fn serve_conn(
    mut conn: TcpStream,
    handler: RpcHandler,
    flag: Arc<AtomicBool>,
    global: Arc<AtomicBool>,
    stats: Arc<NetStats>,
    read_buf: usize,
) {
    let _ = conn.set_read_timeout(Some(IDLE_POLL));
    let mut dec = FrameDecoder::new();
    let mut buf = vec![0u8; read_buf.max(1024)];
    let mut out = Vec::new();
    let mut batch = Vec::new();
    loop {
        if flag.load(Ordering::Acquire) || global.load(Ordering::Acquire) {
            let _ = conn.shutdown(Shutdown::Both);
            return;
        }
        match conn.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => {
                dec.feed(&buf[..n]);
                // Answer the whole burst with one write: pipelined
                // requests arrive many-per-read, and their (often tiny)
                // replies coalesce into a single syscall instead of one
                // per ack.
                batch.clear();
                loop {
                    let frame = match dec.next_frame() {
                        Ok(Some(f)) => f,
                        Ok(None) => break,
                        Err(_) => {
                            let _ = conn.shutdown(Shutdown::Both);
                            return;
                        }
                    };
                    let reply = match Rpc::decode(&frame) {
                        Ok(rpc) => handler(rpc),
                        Err(e) => RpcReply::Error(format!("bad request: {e}")),
                    };
                    reply.encode_into(frame.corr, &mut out);
                    stats.bytes_sent.fetch_add(out.len() as u64, Ordering::Relaxed);
                    batch.extend_from_slice(&out);
                }
                if !batch.is_empty() && write_all_vectored(&mut conn, &batch).is_err() {
                    return;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use eclipse_dhtfs::BlockId;
    use eclipse_util::HashKey;

    fn bid(i: u64) -> BlockId {
        BlockId { file: HashKey(7), index: i }
    }

    fn store_transport() -> Arc<TcpTransport> {
        let t = Arc::new(TcpTransport::new());
        for n in 0..3u32 {
            let blocks: Arc<Mutex<HashMap<BlockId, Bytes>>> =
                Arc::new(Mutex::new(HashMap::new()));
            t.bind(
                NodeId(n),
                Arc::new(move |rpc| match rpc {
                    Rpc::GetBlock { block } => {
                        RpcReply::Block(blocks.lock().get(&block).cloned())
                    }
                    Rpc::PutBlock { block, data } => {
                        blocks.lock().insert(block, data);
                        RpcReply::Ack
                    }
                    Rpc::Heartbeat { .. } => RpcReply::Ack,
                    Rpc::ShuffleBatch { .. } | Rpc::CachePut { .. } => RpcReply::Ack,
                    _ => RpcReply::Error("unsupported".into()),
                }),
            );
        }
        t
    }

    #[test]
    fn put_then_get_over_real_tcp() {
        let t = store_transport();
        let payload = Bytes::from(vec![42u8; 100_000]);
        let r = t
            .call(NodeId(0), NodeId(1), Rpc::PutBlock { block: bid(1), data: payload.clone() })
            .unwrap();
        assert_eq!(r, RpcReply::Ack);
        let r = t.call(NodeId(2), NodeId(1), Rpc::GetBlock { block: bid(1) }).unwrap();
        assert_eq!(r, RpcReply::Block(Some(payload)));
        let r = t.call(NodeId(2), NodeId(1), Rpc::GetBlock { block: bid(9) }).unwrap();
        assert_eq!(r, RpcReply::Block(None));
        let s = t.stats();
        assert!(s.bytes_sent > 200_000, "two copies of the payload crossed the wire");
        assert_eq!(s.timeouts, 0);
    }

    #[test]
    fn one_shared_connection_per_destination() {
        let t = store_transport();
        for i in 0..20 {
            t.call(NodeId(0), NodeId(1), Rpc::GetBlock { block: bid(i) }).unwrap();
        }
        // Every call multiplexed over the single pipelined connection.
        assert_eq!(t.state.lock().peers.len(), 1);
    }

    #[test]
    fn concurrent_calls_share_one_pipelined_link() {
        let t = store_transport();
        let mut joins = Vec::new();
        for w in 0..8u64 {
            let t = Arc::clone(&t);
            joins.push(std::thread::spawn(move || {
                for i in 0..25u64 {
                    let payload = Bytes::from(vec![w as u8; 512]);
                    let block = bid(w * 1000 + i);
                    let r = t
                        .call(NodeId(0), NodeId(1), Rpc::PutBlock { block, data: payload.clone() })
                        .unwrap();
                    assert_eq!(r, RpcReply::Ack);
                    let r = t.call(NodeId(0), NodeId(1), Rpc::GetBlock { block }).unwrap();
                    assert_eq!(r, RpcReply::Block(Some(payload)));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(t.stats().timeouts, 0);
        assert_eq!(t.state.lock().peers.len(), 1, "all workers shared one link");
    }

    #[test]
    fn windowed_sends_flush_to_acks() {
        let t = store_transport();
        let mut tickets = Vec::new();
        for seq in 0..32u32 {
            let rpc = Rpc::ShuffleBatch {
                task: 1,
                attempt: 0,
                seq,
                epoch: 0,
                partition: 0,
                records: vec![("k".into(), "v".into())],
            };
            tickets.push(t.send(NodeId(0), NodeId(1), rpc).unwrap());
        }
        t.flush(&tickets).unwrap();
        let (shuffle_rpcs, shuffle_bytes) = t.stats().kind(crate::RpcKind::ShuffleBatch);
        assert_eq!(shuffle_rpcs, 32);
        assert!(shuffle_bytes > 0);
        // Re-flushing redeemed tickets is a no-op.
        t.flush(&tickets).unwrap();
    }

    #[test]
    fn send_to_closed_endpoint_fails_fast() {
        let t = store_transport();
        t.close_endpoint(NodeId(1));
        let started = Instant::now();
        let e = t
            .send(NodeId(0), NodeId(1), Rpc::CachePut {
                key: eclipse_cache::CacheKey::Input(HashKey(1)),
                data: Bytes::from_static(b"x"),
                ttl: None,
                tenant: 0,
                pin: false,
            })
            .unwrap_err();
        assert_eq!(e, NetError::ConnectionClosed { to: NodeId(1) });
        assert!(started.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn close_endpoint_fails_pending_window_slots() {
        let t = store_transport();
        let ticket = t
            .send(NodeId(0), NodeId(1), Rpc::ShuffleBatch {
                task: 0,
                attempt: 0,
                seq: 0,
                epoch: 0,
                partition: 0,
                records: vec![],
            })
            .unwrap();
        t.close_endpoint(NodeId(1));
        // Whether the ack won the race or the close poisoned the slot,
        // flush must return promptly — never wait out retransmits.
        let started = Instant::now();
        let _ = t.flush(&[ticket]);
        assert!(started.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn closed_endpoint_fails_fast_and_probe_sees_it() {
        let t = store_transport();
        assert!(t.probe(NodeId(0), NodeId(2)));
        t.close_endpoint(NodeId(2));
        let started = Instant::now();
        let e = t.call(NodeId(0), NodeId(2), Rpc::GetBlock { block: bid(0) }).unwrap_err();
        assert_eq!(e, NetError::ConnectionClosed { to: NodeId(2) });
        assert!(started.elapsed() < Duration::from_secs(1), "no retry loop on closed");
        assert!(!t.probe(NodeId(0), NodeId(2)));
    }

    #[test]
    fn unbound_node_is_connection_closed() {
        let t = store_transport();
        let e = t.call(NodeId(0), NodeId(9), Rpc::GetBlock { block: bid(0) }).unwrap_err();
        assert_eq!(e, NetError::ConnectionClosed { to: NodeId(9) });
    }

    #[test]
    fn handlers_can_nest_calls() {
        // ReplicaSync-style relay: node 0's handler pushes to node 1.
        let t = Arc::new(TcpTransport::new());
        let relay = Arc::clone(&t);
        t.bind(
            NodeId(1),
            Arc::new(|rpc| match rpc {
                Rpc::PutBlock { .. } => RpcReply::Ack,
                _ => RpcReply::Error("unsupported".into()),
            }),
        );
        let weak = Arc::downgrade(&relay);
        drop(relay);
        t.bind(
            NodeId(0),
            Arc::new(move |rpc| match rpc {
                Rpc::ReplicaSync { block, to } => {
                    let Some(t) = weak.upgrade() else { return RpcReply::Missing };
                    match t.call(NodeId(0), to, Rpc::PutBlock {
                        block,
                        data: Bytes::from_static(b"relayed"),
                    }) {
                        Ok(_) => RpcReply::Synced { bytes: 7 },
                        Err(e) => RpcReply::Error(e.to_string()),
                    }
                }
                _ => RpcReply::Error("unsupported".into()),
            }),
        );
        let r = t
            .call(crate::CLIENT, NodeId(0), Rpc::ReplicaSync { block: bid(0), to: NodeId(1) })
            .unwrap();
        assert_eq!(r, RpcReply::Synced { bytes: 7 });
    }
}
