//! Loopback-TCP transport backend: the same RPCs over a real wire.
//!
//! Each bound node owns a `127.0.0.1` listener and an accept thread;
//! every accepted connection gets a serving thread that decodes request
//! frames with [`FrameDecoder`] (byte boundaries are arbitrary on TCP)
//! and writes correlated response frames. The client side keeps a
//! per-peer pool of idle connections; one logical call takes a
//! connection, writes one request frame, and blocks for the matching
//! response under a per-RPC timeout. Timeouts burn the connection
//! (its stream state is unknown) and retry on a fresh one with
//! exponential backoff, up to the [`RetryPolicy`] budget.
//!
//! [`Transport::close_endpoint`] poisons a node: its listener stops
//! accepting, every served connection is shut down (peers blocked on a
//! reply get a reset, not a hang), and pooled client connections to it
//! are discarded. The fail-fast contract matches the in-memory backend.

use crate::rpc::{Rpc, RpcReply};
use crate::wire::FrameDecoder;
use crate::{NetError, NetSnapshot, NetStats, RetryPolicy, RpcHandler, Transport};
use eclipse_ring::NodeId;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poll interval for the accept loop and serving reads: how quickly
/// shutdown flags are observed.
const POLL: Duration = Duration::from_millis(10);

#[derive(Default)]
struct TcpState {
    addrs: HashMap<u32, SocketAddr>,
    closed: HashSet<u32>,
    /// Per-endpoint shutdown flags (accept + serving threads watch
    /// these).
    flags: HashMap<u32, Arc<AtomicBool>>,
    /// Accepted connections per endpoint, retained (as clones) so
    /// `close_endpoint` can reset peers blocked on a reply.
    served: HashMap<u32, Arc<Mutex<Vec<TcpStream>>>>,
    /// Idle client connections, keyed by target node.
    pool: HashMap<u32, Vec<TcpStream>>,
}

/// The loopback-TCP [`Transport`] backend. See the module docs.
pub struct TcpTransport {
    state: Mutex<TcpState>,
    stats: Arc<NetStats>,
    policy: RetryPolicy,
    rpc_timeout: Duration,
    corr: AtomicU64,
    shutdown: Arc<AtomicBool>,
}

impl Default for TcpTransport {
    fn default() -> TcpTransport {
        TcpTransport::new()
    }
}

impl TcpTransport {
    pub fn new() -> TcpTransport {
        TcpTransport::with_policy(RetryPolicy::default())
    }

    pub fn with_policy(policy: RetryPolicy) -> TcpTransport {
        TcpTransport {
            state: Mutex::new(TcpState::default()),
            stats: Arc::new(NetStats::default()),
            policy,
            // Generous: loopback latency is microseconds, but debug
            // builds on loaded single-core machines schedule serving
            // threads late. Retries keep correctness either way.
            rpc_timeout: Duration::from_secs(2),
            corr: AtomicU64::new(1),
            shutdown: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The bound address of a node's listener (tests/diagnostics).
    pub fn addr_of(&self, node: NodeId) -> Option<SocketAddr> {
        self.state.lock().addrs.get(&node.0).copied()
    }

    fn take_conn(&self, to: NodeId) -> Result<TcpStream, NetError> {
        let (addr, pooled) = {
            let mut st = self.state.lock();
            if st.closed.contains(&to.0) {
                return Err(NetError::ConnectionClosed { to });
            }
            let Some(addr) = st.addrs.get(&to.0).copied() else {
                return Err(NetError::ConnectionClosed { to });
            };
            (addr, st.pool.get_mut(&to.0).and_then(|v| v.pop()))
        };
        if let Some(conn) = pooled {
            return Ok(conn);
        }
        match TcpStream::connect_timeout(&addr, self.rpc_timeout) {
            Ok(conn) => {
                let _ = conn.set_nodelay(true);
                Ok(conn)
            }
            Err(_) => Err(NetError::ConnectionClosed { to }),
        }
    }

    fn return_conn(&self, to: NodeId, conn: TcpStream) {
        let mut st = self.state.lock();
        if !st.closed.contains(&to.0) {
            st.pool.entry(to.0).or_default().push(conn);
        }
    }

    /// One attempt: write the request frame, block for the correlated
    /// response.
    fn attempt(&self, to: NodeId, frame: &[u8], corr: u64) -> Result<RpcReply, NetError> {
        let mut conn = self.take_conn(to)?;
        let _ = conn.set_read_timeout(Some(POLL));
        if conn.write_all(frame).is_err() {
            return Err(NetError::Timeout { to });
        }
        self.stats.bytes_sent.fetch_add(frame.len() as u64, Ordering::Relaxed);
        let deadline = Instant::now() + self.rpc_timeout;
        let mut dec = FrameDecoder::new();
        let mut buf = [0u8; 64 * 1024];
        loop {
            if Instant::now() > deadline {
                return Err(NetError::Timeout { to });
            }
            if self.state.lock().closed.contains(&to.0) {
                return Err(NetError::ConnectionClosed { to });
            }
            match conn.read(&mut buf) {
                Ok(0) => {
                    // Peer hung up mid-call: closed endpoint or dying
                    // connection — classify by the closed set.
                    return if self.state.lock().closed.contains(&to.0) {
                        Err(NetError::ConnectionClosed { to })
                    } else {
                        Err(NetError::Timeout { to })
                    };
                }
                Ok(n) => {
                    dec.feed(&buf[..n]);
                    match dec.next_frame() {
                        Err(e) => return Err(NetError::Codec(e)),
                        Ok(None) => continue,
                        Ok(Some(f)) => {
                            if f.corr != corr {
                                // A stale response from a previous
                                // timed-out call can only appear on a
                                // reused connection we already burned;
                                // treat it as protocol corruption.
                                return Err(NetError::Timeout { to });
                            }
                            let reply = RpcReply::decode(&f)?;
                            self.return_conn(to, conn);
                            return Ok(reply);
                        }
                    }
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    continue;
                }
                Err(_) => {
                    return if self.state.lock().closed.contains(&to.0) {
                        Err(NetError::ConnectionClosed { to })
                    } else {
                        Err(NetError::Timeout { to })
                    };
                }
            }
        }
    }
}

impl Transport for TcpTransport {
    fn bind(&self, node: NodeId, handler: RpcHandler) {
        // Re-binding an open endpoint closes the old one first.
        if self.state.lock().addrs.contains_key(&node.0) {
            self.close_endpoint(node);
        }
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
        listener.set_nonblocking(true).expect("nonblocking listener");
        let addr = listener.local_addr().expect("listener addr");
        let flag = Arc::new(AtomicBool::new(false));
        let served: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let mut st = self.state.lock();
            st.addrs.insert(node.0, addr);
            st.closed.remove(&node.0);
            st.flags.insert(node.0, Arc::clone(&flag));
            st.served.insert(node.0, Arc::clone(&served));
        }
        let global = Arc::clone(&self.shutdown);
        let stats = Arc::clone(&self.stats);
        std::thread::spawn(move || {
            accept_loop(listener, handler, flag, global, served, stats);
        });
    }

    fn call(&self, from: NodeId, to: NodeId, rpc: Rpc) -> Result<RpcReply, NetError> {
        let _ = from; // TCP addressing is by destination socket
        let corr = self.corr.fetch_add(1, Ordering::Relaxed);
        let frame = rpc.encode(corr);
        let mut last = NetError::Timeout { to };
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                self.stats.rpc_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.policy.backoff(attempt));
            }
            self.stats.rpcs.fetch_add(1, Ordering::Relaxed);
            match self.attempt(to, &frame, corr) {
                Ok(reply) => return Ok(reply),
                Err(NetError::Timeout { .. }) => {
                    self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    last = NetError::Timeout { to };
                }
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    fn probe(&self, _from: NodeId, to: NodeId) -> bool {
        self.call(_from, to, Rpc::Heartbeat { from: _from, clock: 0 }).is_ok()
    }

    fn close_endpoint(&self, node: NodeId) {
        let (flag, served, pooled) = {
            let mut st = self.state.lock();
            st.closed.insert(node.0);
            (
                st.flags.remove(&node.0),
                st.served.remove(&node.0),
                st.pool.remove(&node.0),
            )
        };
        if let Some(flag) = flag {
            flag.store(true, Ordering::Release);
        }
        // Reset peers blocked on a reply from this node.
        if let Some(served) = served {
            for conn in served.lock().drain(..) {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        for conn in pooled.into_iter().flatten() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }

    fn stats(&self) -> NetSnapshot {
        self.stats.snapshot()
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        let mut st = self.state.lock();
        for (_, served) in st.served.drain() {
            for conn in served.lock().drain(..) {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        st.pool.clear();
    }
}

fn accept_loop(
    listener: TcpListener,
    handler: RpcHandler,
    flag: Arc<AtomicBool>,
    global: Arc<AtomicBool>,
    served: Arc<Mutex<Vec<TcpStream>>>,
    stats: Arc<NetStats>,
) {
    loop {
        if flag.load(Ordering::Acquire) || global.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((conn, _)) => {
                let _ = conn.set_nodelay(true);
                if let Ok(clone) = conn.try_clone() {
                    served.lock().push(clone);
                }
                let handler = Arc::clone(&handler);
                let flag = Arc::clone(&flag);
                let global = Arc::clone(&global);
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || serve_conn(conn, handler, flag, global, stats));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => return,
        }
    }
}

/// Serve one accepted connection: decode request frames, run the
/// handler, write correlated responses. Exits on EOF, shutdown flags,
/// or a codec error (a byte stream with a corrupt frame cannot be
/// resynchronized).
fn serve_conn(
    mut conn: TcpStream,
    handler: RpcHandler,
    flag: Arc<AtomicBool>,
    global: Arc<AtomicBool>,
    stats: Arc<NetStats>,
) {
    let _ = conn.set_read_timeout(Some(POLL));
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        if flag.load(Ordering::Acquire) || global.load(Ordering::Acquire) {
            let _ = conn.shutdown(Shutdown::Both);
            return;
        }
        match conn.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => {
                dec.feed(&buf[..n]);
                loop {
                    let frame = match dec.next_frame() {
                        Ok(Some(f)) => f,
                        Ok(None) => break,
                        Err(_) => {
                            let _ = conn.shutdown(Shutdown::Both);
                            return;
                        }
                    };
                    let reply = match Rpc::decode(&frame) {
                        Ok(rpc) => handler(rpc),
                        Err(e) => RpcReply::Error(format!("bad request: {e}")),
                    };
                    let out = reply.encode(frame.corr);
                    stats.bytes_sent.fetch_add(out.len() as u64, Ordering::Relaxed);
                    if conn.write_all(&out).is_err() {
                        return;
                    }
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use eclipse_dhtfs::BlockId;
    use eclipse_util::HashKey;

    fn bid(i: u64) -> BlockId {
        BlockId { file: HashKey(7), index: i }
    }

    fn store_transport() -> Arc<TcpTransport> {
        let t = Arc::new(TcpTransport::new());
        for n in 0..3u32 {
            let blocks: Arc<Mutex<HashMap<BlockId, Bytes>>> =
                Arc::new(Mutex::new(HashMap::new()));
            t.bind(
                NodeId(n),
                Arc::new(move |rpc| match rpc {
                    Rpc::GetBlock { block } => {
                        RpcReply::Block(blocks.lock().get(&block).cloned())
                    }
                    Rpc::PutBlock { block, data } => {
                        blocks.lock().insert(block, data);
                        RpcReply::Ack
                    }
                    Rpc::Heartbeat { .. } => RpcReply::Ack,
                    _ => RpcReply::Error("unsupported".into()),
                }),
            );
        }
        t
    }

    #[test]
    fn put_then_get_over_real_tcp() {
        let t = store_transport();
        let payload = Bytes::from(vec![42u8; 100_000]);
        let r = t
            .call(NodeId(0), NodeId(1), Rpc::PutBlock { block: bid(1), data: payload.clone() })
            .unwrap();
        assert_eq!(r, RpcReply::Ack);
        let r = t.call(NodeId(2), NodeId(1), Rpc::GetBlock { block: bid(1) }).unwrap();
        assert_eq!(r, RpcReply::Block(Some(payload)));
        let r = t.call(NodeId(2), NodeId(1), Rpc::GetBlock { block: bid(9) }).unwrap();
        assert_eq!(r, RpcReply::Block(None));
        let s = t.stats();
        assert!(s.bytes_sent > 200_000, "two copies of the payload crossed the wire");
        assert_eq!(s.timeouts, 0);
    }

    #[test]
    fn connection_reuse_pools() {
        let t = store_transport();
        for i in 0..20 {
            t.call(NodeId(0), NodeId(1), Rpc::GetBlock { block: bid(i) }).unwrap();
        }
        // After serial calls the pool holds at most one idle connection
        // to node 1 (each call returns the one it took).
        assert!(t.state.lock().pool.get(&1).map(|v| v.len()).unwrap_or(0) <= 1);
    }

    #[test]
    fn closed_endpoint_fails_fast_and_probe_sees_it() {
        let t = store_transport();
        assert!(t.probe(NodeId(0), NodeId(2)));
        t.close_endpoint(NodeId(2));
        let started = Instant::now();
        let e = t.call(NodeId(0), NodeId(2), Rpc::GetBlock { block: bid(0) }).unwrap_err();
        assert_eq!(e, NetError::ConnectionClosed { to: NodeId(2) });
        assert!(started.elapsed() < Duration::from_secs(1), "no retry loop on closed");
        assert!(!t.probe(NodeId(0), NodeId(2)));
    }

    #[test]
    fn unbound_node_is_connection_closed() {
        let t = store_transport();
        let e = t.call(NodeId(0), NodeId(9), Rpc::GetBlock { block: bid(0) }).unwrap_err();
        assert_eq!(e, NetError::ConnectionClosed { to: NodeId(9) });
    }

    #[test]
    fn handlers_can_nest_calls() {
        // ReplicaSync-style relay: node 0's handler pushes to node 1.
        let t = Arc::new(TcpTransport::new());
        let relay = Arc::clone(&t);
        t.bind(
            NodeId(1),
            Arc::new(|rpc| match rpc {
                Rpc::PutBlock { .. } => RpcReply::Ack,
                _ => RpcReply::Error("unsupported".into()),
            }),
        );
        let weak = Arc::downgrade(&relay);
        drop(relay);
        t.bind(
            NodeId(0),
            Arc::new(move |rpc| match rpc {
                Rpc::ReplicaSync { block, to } => {
                    let Some(t) = weak.upgrade() else { return RpcReply::Missing };
                    match t.call(NodeId(0), to, Rpc::PutBlock {
                        block,
                        data: Bytes::from_static(b"relayed"),
                    }) {
                        Ok(_) => RpcReply::Synced { bytes: 7 },
                        Err(e) => RpcReply::Error(e.to_string()),
                    }
                }
                _ => RpcReply::Error("unsupported".into()),
            }),
        );
        let r = t
            .call(crate::CLIENT, NodeId(0), Rpc::ReplicaSync { block: bid(0), to: NodeId(1) })
            .unwrap();
        assert_eq!(r, RpcReply::Synced { bytes: 7 });
    }
}
