//! Reply demultiplexing and the one-way ack window.
//!
//! One pooled connection now carries many concurrent RPCs: callers
//! register a correlation id, write their request frame, and park in
//! [`Demux::wait`]; the connection's single reader thread pulls
//! response frames off the socket and [`Demux::settle`]s whichever
//! caller the correlation id names — replies may arrive in any order.
//!
//! [`SendWindow`] is the same idea for the one-way lane
//! ([`crate::Transport::send`]): each windowed frame keeps a slot —
//! holding the encoded bytes for retransmission — until its ack
//! arrives or its retry budget dies. Slots survive connection churn
//! (the window belongs to the *destination*, not the socket), so a
//! reconnect can retransmit exactly the bytes the dead socket lost.

use crate::{NetError, RpcKind, RpcReply};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Loopback replies usually land within a few scheduler passes, so
/// waiters yield-spin this many times (re-checking their slot between
/// yields) before paying the futex park/notify round-trip. Yielding —
/// not busy-spinning — keeps this harmless on saturated single-core
/// hosts: the reply can only arrive if the reader thread gets the CPU.
pub(crate) const SPIN_YIELDS: u32 = 32;

/// Park on `cv` until `deadline`; true when the deadline passed
/// without a notification.
fn wait_until<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    deadline: Instant,
) -> (MutexGuard<'a, T>, bool) {
    let left = deadline.saturating_duration_since(Instant::now());
    if left.is_zero() {
        return (guard, true);
    }
    let (guard, res) = cv.wait_timeout(guard, left).unwrap();
    (guard, res.timed_out())
}

enum CallSlot {
    Waiting,
    Ready(Result<RpcReply, NetError>),
}

/// Correlation-id → caller demultiplexer for in-flight requests on one
/// connection.
#[derive(Default)]
pub struct Demux {
    slots: Mutex<HashMap<u64, CallSlot>>,
    cv: Condvar,
}

impl Demux {
    pub fn new() -> Demux {
        Demux::default()
    }

    /// Announce interest in `corr` *before* the request frame is
    /// written, so a reply can never race past its waiter.
    pub fn register(&self, corr: u64) {
        self.slots.lock().unwrap().insert(corr, CallSlot::Waiting);
    }

    /// Deliver the reply for `corr`. Returns false when no caller is
    /// registered (stale reply for a timed-out attempt, or a windowed
    /// send's corr — the reader then tries the [`SendWindow`]).
    pub fn settle(&self, corr: u64, res: Result<RpcReply, NetError>) -> bool {
        let mut slots = self.slots.lock().unwrap();
        match slots.get_mut(&corr) {
            Some(slot @ CallSlot::Waiting) => {
                *slot = CallSlot::Ready(res);
                self.cv.notify_all();
                true
            }
            _ => false,
        }
    }

    /// Park until `corr` settles or `deadline` passes. The slot is
    /// removed either way; `None` means timeout and any late reply for
    /// this corr will be dropped as stale.
    pub fn wait(&self, corr: u64, deadline: Instant) -> Option<Result<RpcReply, NetError>> {
        // Fast path: yield-spin before parking (see [`SPIN_YIELDS`]).
        for _ in 0..SPIN_YIELDS {
            if let Some(CallSlot::Ready(_)) = self.slots.lock().unwrap().get(&corr) {
                break;
            }
            std::thread::yield_now();
        }
        let mut slots = self.slots.lock().unwrap();
        loop {
            if let Some(CallSlot::Ready(_)) = slots.get(&corr) {
                match slots.remove(&corr) {
                    Some(CallSlot::Ready(res)) => return Some(res),
                    _ => unreachable!("slot checked Ready under the same lock"),
                }
            }
            let (guard, timed_out) = wait_until(&self.cv, slots, deadline);
            slots = guard;
            if timed_out {
                // One last look: a reply that raced the deadline wins.
                if let Some(CallSlot::Ready(res)) = slots.remove(&corr) {
                    return Some(res);
                }
                return None;
            }
        }
    }

    /// Drop interest in `corr` without waiting.
    pub fn cancel(&self, corr: u64) {
        self.slots.lock().unwrap().remove(&corr);
    }

    /// Settle every waiting caller with `err` (connection died).
    pub fn fail_all(&self, err: &NetError) {
        let mut slots = self.slots.lock().unwrap();
        for slot in slots.values_mut() {
            if matches!(slot, CallSlot::Waiting) {
                *slot = CallSlot::Ready(Err(err.clone()));
            }
        }
        self.cv.notify_all();
    }

    /// Registered-but-unclaimed slots (settled or not).
    pub fn pending(&self) -> usize {
        self.slots.lock().unwrap().len()
    }
}

/// One windowed send awaiting acknowledgement.
struct WinSlot {
    frame: Arc<Vec<u8>>,
    kind: RpcKind,
    /// Transmissions so far (>= 1).
    attempts: u32,
    /// When the current transmission stops being waited on.
    deadline: Instant,
    done: Option<Result<(), NetError>>,
}

/// What [`SendWindow::poll`] found for a ticket.
pub enum WinPoll {
    /// Acked or failed; the slot has been released.
    Done(Result<(), NetError>),
    /// Still awaiting its ack, within deadline.
    Pending { deadline: Instant },
    /// Deadline passed without an ack: the caller decides — retransmit
    /// (then [`SendWindow::bump`]) or give up ([`SendWindow::fail`]).
    Expired { frame: Arc<Vec<u8>>, kind: RpcKind, attempts: u32 },
    /// No such slot (already redeemed).
    Unknown,
}

/// Bounded in-flight window for one destination's one-way sends.
pub struct SendWindow {
    limit: usize,
    slots: Mutex<HashMap<u64, WinSlot>>,
    cv: Condvar,
}

impl SendWindow {
    pub fn new(limit: usize) -> SendWindow {
        SendWindow { limit: limit.max(1), slots: Mutex::new(HashMap::new()), cv: Condvar::new() }
    }

    /// Claim a slot for `corr`, blocking while the window is full.
    /// Only live in-flight slots (unsettled, within deadline) count
    /// toward the limit, so a dead peer — whose slots all expire —
    /// can never wedge senders forever.
    pub fn admit(&self, corr: u64, frame: Arc<Vec<u8>>, kind: RpcKind, deadline: Instant) {
        let mut slots = self.slots.lock().unwrap();
        loop {
            if Self::admit_locked(&mut slots, self.limit, corr, &frame, kind, deadline) {
                return;
            }
            // Wake on ack/fail, or when the earliest in-flight deadline
            // passes (that slot then stops counting).
            let now = Instant::now();
            let until = slots
                .values()
                .filter(|s| s.done.is_none() && s.deadline > now)
                .map(|s| s.deadline)
                .min()
                .unwrap_or(now);
            let (guard, _) = wait_until(&self.cv, slots, until);
            slots = guard;
        }
    }

    /// Non-blocking [`SendWindow::admit`]: false when the window is
    /// full. Lets the caller push out whatever is keeping acks from
    /// arriving (e.g. coalesced-but-unwritten frames) before parking
    /// in the blocking variant.
    pub fn try_admit(
        &self,
        corr: u64,
        frame: Arc<Vec<u8>>,
        kind: RpcKind,
        deadline: Instant,
    ) -> bool {
        let mut slots = self.slots.lock().unwrap();
        Self::admit_locked(&mut slots, self.limit, corr, &frame, kind, deadline)
    }

    fn admit_locked(
        slots: &mut HashMap<u64, WinSlot>,
        limit: usize,
        corr: u64,
        frame: &Arc<Vec<u8>>,
        kind: RpcKind,
        deadline: Instant,
    ) -> bool {
        let now = Instant::now();
        let live = slots.values().filter(|s| s.done.is_none() && s.deadline > now).count();
        if live < limit {
            slots.insert(
                corr,
                WinSlot { frame: Arc::clone(frame), kind, attempts: 1, deadline, done: None },
            );
            true
        } else {
            false
        }
    }

    /// True when every window slot is occupied by a live in-flight
    /// send — the saturation signal admission control couples to (a
    /// destination that stops acking shows up here long before
    /// submitters would otherwise notice).
    pub fn saturated(&self) -> bool {
        let slots = self.slots.lock().unwrap();
        let now = Instant::now();
        slots.values().filter(|s| s.done.is_none() && s.deadline > now).count() >= self.limit
    }

    /// Acknowledge (or fail) `corr`. False when the slot is unknown —
    /// a duplicate ack after retransmission, or a call-lane corr.
    pub fn settle(&self, corr: u64, res: Result<(), NetError>) -> bool {
        let mut slots = self.slots.lock().unwrap();
        match slots.get_mut(&corr) {
            Some(slot) if slot.done.is_none() => {
                slot.done = Some(res);
                self.cv.notify_all();
                true
            }
            _ => false,
        }
    }

    /// Inspect `corr` for the flush loop; a settled slot is released.
    pub fn poll(&self, corr: u64, now: Instant) -> WinPoll {
        let mut slots = self.slots.lock().unwrap();
        match slots.get(&corr) {
            None => WinPoll::Unknown,
            Some(slot) => {
                if slot.done.is_some() {
                    let slot = slots.remove(&corr).expect("checked present");
                    self.cv.notify_all();
                    WinPoll::Done(slot.done.expect("checked settled"))
                } else if slot.deadline <= now {
                    WinPoll::Expired {
                        frame: Arc::clone(&slot.frame),
                        kind: slot.kind,
                        attempts: slot.attempts,
                    }
                } else {
                    WinPoll::Pending { deadline: slot.deadline }
                }
            }
        }
    }

    /// Record a retransmission of `corr`: one more attempt, new
    /// deadline.
    pub fn bump(&self, corr: u64, deadline: Instant) {
        let mut slots = self.slots.lock().unwrap();
        if let Some(slot) = slots.get_mut(&corr) {
            if slot.done.is_none() {
                slot.attempts += 1;
                slot.deadline = deadline;
            }
        }
    }

    /// Give up on `corr` with `err` (retry budget exhausted, endpoint
    /// closed). No-op if already settled.
    pub fn fail(&self, corr: u64, err: NetError) {
        self.settle(corr, Err(err));
    }

    /// Fail every unsettled slot (endpoint closed / transport torn
    /// down).
    pub fn fail_all(&self, err: &NetError) {
        let mut slots = self.slots.lock().unwrap();
        for slot in slots.values_mut() {
            if slot.done.is_none() {
                slot.done = Some(Err(err.clone()));
            }
        }
        self.cv.notify_all();
    }

    /// Wake blocked senders/flushers so they re-examine the window
    /// (connection died; deadlines may now be moot).
    pub fn wake(&self) {
        self.cv.notify_all();
    }

    /// Park until `corr` settles or expires; returns the same shapes
    /// as [`SendWindow::poll`] without busy-waiting. `deadline` bounds
    /// this wait itself (a [`WinPoll::Pending`] return means it passed
    /// first).
    pub fn wait_settled(&self, corr: u64, deadline: Instant) -> WinPoll {
        // Same yield-spin fast path as [`Demux::wait`]: flush usually
        // finds its ack within a few scheduler passes on loopback.
        for _ in 0..SPIN_YIELDS {
            match self.slots.lock().unwrap().get(&corr) {
                Some(slot) if slot.done.is_none() => std::thread::yield_now(),
                _ => break,
            }
        }
        let mut slots = self.slots.lock().unwrap();
        loop {
            let now = Instant::now();
            match slots.get(&corr) {
                None => return WinPoll::Unknown,
                Some(slot) if slot.done.is_some() => {
                    let slot = slots.remove(&corr).expect("checked present");
                    self.cv.notify_all();
                    return WinPoll::Done(slot.done.expect("checked settled"));
                }
                Some(slot) if slot.deadline <= now => {
                    return WinPoll::Expired {
                        frame: Arc::clone(&slot.frame),
                        kind: slot.kind,
                        attempts: slot.attempts,
                    };
                }
                Some(slot) => {
                    if now >= deadline {
                        return WinPoll::Pending { deadline: slot.deadline };
                    }
                    let until = deadline.min(slot.deadline);
                    let (guard, _) = wait_until(&self.cv, slots, until);
                    slots = guard;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn soon() -> Instant {
        Instant::now() + Duration::from_millis(200)
    }

    #[test]
    fn settle_then_wait_returns_reply() {
        let d = Demux::new();
        d.register(7);
        assert!(d.settle(7, Ok(RpcReply::Ack)));
        assert_eq!(d.wait(7, soon()), Some(Ok(RpcReply::Ack)));
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn unknown_corr_is_rejected_as_stale() {
        let d = Demux::new();
        assert!(!d.settle(99, Ok(RpcReply::Ack)));
    }

    #[test]
    fn wait_timeout_drops_slot() {
        let d = Demux::new();
        d.register(1);
        assert_eq!(d.wait(1, Instant::now()), None);
        // A late reply is now stale.
        assert!(!d.settle(1, Ok(RpcReply::Ack)));
    }

    #[test]
    fn fail_all_wakes_every_waiter() {
        let d = Arc::new(Demux::new());
        d.register(1);
        d.register(2);
        d.fail_all(&NetError::ConnectionClosed { to: eclipse_ring::NodeId(3) });
        assert!(matches!(d.wait(1, soon()), Some(Err(NetError::ConnectionClosed { .. }))));
        assert!(matches!(d.wait(2, soon()), Some(Err(NetError::ConnectionClosed { .. }))));
    }

    #[test]
    fn window_blocks_at_limit_until_settled() {
        let w = Arc::new(SendWindow::new(1));
        let frame = Arc::new(vec![1u8, 2, 3]);
        let far = Instant::now() + Duration::from_secs(5);
        w.admit(1, Arc::clone(&frame), RpcKind::ShuffleBatch, far);
        let w2 = Arc::clone(&w);
        let f2 = Arc::clone(&frame);
        let t = std::thread::spawn(move || {
            // Blocks until corr 1 is acked.
            w2.admit(2, f2, RpcKind::ShuffleBatch, Instant::now() + Duration::from_secs(5));
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!t.is_finished(), "second admit must block while window is full");
        assert!(w.settle(1, Ok(())));
        t.join().unwrap();
        assert!(matches!(w.poll(1, Instant::now()), WinPoll::Done(Ok(()))));
        assert!(matches!(w.poll(1, Instant::now()), WinPoll::Unknown));
    }

    #[test]
    fn expired_slots_do_not_wedge_admission() {
        let w = SendWindow::new(1);
        let frame = Arc::new(vec![0u8]);
        // Already expired: counts as zero in-flight.
        w.admit(1, Arc::clone(&frame), RpcKind::CachePut, Instant::now());
        w.admit(2, frame, RpcKind::CachePut, soon());
        match w.poll(1, Instant::now()) {
            WinPoll::Expired { attempts, .. } => assert_eq!(attempts, 1),
            _ => panic!("slot 1 must be expired"),
        }
    }

    #[test]
    fn bump_extends_deadline_and_counts_attempts() {
        let w = SendWindow::new(4);
        w.admit(1, Arc::new(vec![0u8]), RpcKind::ShuffleBatch, Instant::now());
        w.bump(1, soon());
        match w.poll(1, Instant::now()) {
            WinPoll::Pending { .. } => {}
            _ => panic!("bumped slot must be pending again"),
        }
        w.fail(1, NetError::Timeout { to: eclipse_ring::NodeId(0) });
        assert!(matches!(w.poll(1, Instant::now()), WinPoll::Done(Err(NetError::Timeout { .. }))));
    }
}
