//! DFSIO-style read benchmark over both file systems — the workload
//! behind Fig. 5.
//!
//! Fig. 5(a) reports `total bytes / map task execution time`: pure local
//! disk read latency, excluding "the overhead of NameNode directory
//! lookup and job scheduling" — both file systems look alike.
//! Fig. 5(b) reports `total bytes / job execution time`: the DHT FS has
//! "negligible overhead in decentralized directory lookup and job
//! scheduling, \[while\] Hadoop suffers from various overheads including
//! NameNode lookup, container initialization, and job scheduling."

use eclipse_dhtfs::{DhtFs, DhtFsConfig, HdfsFs, HdfsPlacement, NameNodeConfig};
use eclipse_ring::Ring;
use eclipse_sim::{ClusterConfig, SerialResource, SimCluster, SimTime};
use eclipse_util::MB;

/// Combined master-path service time per Hadoop task: NameNode lookup +
/// ResourceManager container allocation + JobTracker-style bookkeeping.
/// Every task of every concurrent job funnels through this one queue —
/// the scalability cliff §III-A observes.
pub const HDFS_MASTER_OP_SECS: f64 = 0.05;

/// NameNode service-time amplification per additional concurrent job.
/// The FSNamesystem global lock and GC pressure make per-op latency grow
/// with offered load rather than stay constant; this convexity is what
/// makes HDFS throughput "degrade at a much faster rate" (§III-A) than
/// a decentralized lookup path, whose cost stays zero at any load.
pub const HDFS_MASTER_CONTENTION: f64 = 0.3;

/// Node-manager heartbeat interval: YARN allocates roughly one container
/// per node per heartbeat, so a wave of tasks destined for one node
/// starts staggered rather than simultaneously.
pub const NM_HEARTBEAT_SECS: f64 = 1.0;

/// Result of one DFSIO run.
#[derive(Clone, Copy, Debug)]
pub struct DfsioResult {
    /// Fig. 5(a): bytes / summed map-task read time, MB/s.
    pub per_task_throughput: f64,
    /// Fig. 5(b): per-job bytes / whole-batch wall time, MB/s — the
    /// figure the paper plots; under concurrency this is the average
    /// throughput each job experienced.
    pub per_job_throughput: f64,
}

/// DFSIO over the DHT file system on `nodes` servers reading
/// `total_bytes`. `concurrent_jobs` models the multi-job scalability
/// probe the paper mentions (§III-A's "multiple concurrent DFSIO jobs").
pub fn dfsio_dht(nodes: usize, total_bytes: u64, concurrent_jobs: usize) -> DfsioResult {
    let ring = Ring::with_servers_evenly_spaced(nodes, "dfsio");
    let mut fs = DhtFs::new(ring, DhtFsConfig::default());
    let mut cluster = SimCluster::new(ClusterConfig::paper_testbed_with_nodes(nodes));
    let block = fs.config().block_size;

    let mut task_time_sum = 0.0;
    let mut job_end: f64 = 0.0;
    let mut bytes_done = 0u64;
    for j in 0..concurrent_jobs.max(1) {
        let name = format!("dfsio-{j}");
        let meta = fs.upload(&name, "bench", total_bytes).expect("upload").clone();
        for b in &meta.blocks {
            // Decentralized lookup: the reader resolves holders from its
            // own finger table — no shared queue, negligible cost. Reads
            // go to the least-loaded replica (owner, predecessor or
            // successor all hold the block, §II-A).
            let exec = fs
                .block_holders(b.id)
                .expect("placed")
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    // Reads are disk-bound: balance on disk backlog.
                    let fa = cluster.nodes[a.index()].disk.available_at(SimTime(0.0)).secs();
                    let fb = cluster.nodes[b.index()].disk.available_at(SimTime(0.0)).secs();
                    fa.partial_cmp(&fb).unwrap().then(a.cmp(&b))
                })
                .expect("replicated");
            let start = cluster.nodes[exec.index()]
                .map_slots
                .next_free(SimTime(0.0))
                .secs();
            let done = cluster.disk_read(SimTime(start), exec.index(), b.size).secs();
            let dur = done - start;
            cluster.nodes[exec.index()].map_slots.run(SimTime(0.0), dur);
            // Fig. 5(a) measures the read service time itself ("the read
            // latency of local disks"), not same-node queueing.
            task_time_sum += cluster.disk_latency(exec.index(), b.size);
            job_end = job_end.max(done);
            bytes_done += b.size;
        }
        let _ = block;
    }
    throughput(bytes_done, task_time_sum, job_end, nodes, concurrent_jobs.max(1))
}

/// DFSIO over HDFS: identical disks, but every block read queues a
/// NameNode RPC and pays per-task container/scheduling overhead.
pub fn dfsio_hdfs(
    nodes: usize,
    total_bytes: u64,
    concurrent_jobs: usize,
    container_overhead: f64,
) -> DfsioResult {
    let mut fs = HdfsFs::new(nodes, 2, NameNodeConfig::default());
    let mut cluster = SimCluster::new(ClusterConfig::paper_testbed_with_nodes(nodes));
    let jobs_f = concurrent_jobs.max(1) as f64;
    let op_secs = HDFS_MASTER_OP_SECS * (1.0 + HDFS_MASTER_CONTENTION * (jobs_f - 1.0));
    let mut master = SerialResource::new(1.0, op_secs);
    let block = eclipse_util::DEFAULT_BLOCK_SIZE;

    let mut task_time_sum = 0.0;
    let mut job_end: f64 = 0.0;
    let mut bytes_done = 0u64;
    for j in 0..concurrent_jobs.max(1) {
        let name = format!("dfsio-{j}");
        let meta = fs
            .upload(&name, "bench", total_bytes, block, HdfsPlacement::RoundRobin)
            .clone();
        let mut allocated = vec![0u64; nodes];
        for b in &meta.blocks {
            // Centralized path: NameNode lookup + container allocation,
            // all jobs queueing on the same master.
            let looked_up = master.reserve(SimTime(0.0), 0).secs();
            let exec = fs.block_locations(b.id).expect("placed")[0];
            // Containers arrive one per node-manager heartbeat.
            let paced = looked_up + allocated[exec.index()] as f64 * NM_HEARTBEAT_SECS;
            allocated[exec.index()] += 1;
            let start = cluster.nodes[exec.index()]
                .map_slots
                .next_free(SimTime(looked_up))
                .secs()
                .max(paced);
            // Container startup precedes the read (charged to the job,
            // not to the raw read). The read itself:
            let read_start = start + container_overhead;
            let done = cluster.disk_read(SimTime(read_start), exec.index(), b.size).secs();
            cluster.nodes[exec.index()].map_slots.run(SimTime(looked_up), done - start);
            // Fig. 5(a): pure read service time, overheads excluded.
            task_time_sum += cluster.disk_latency(exec.index(), b.size);
            job_end = job_end.max(done);
            bytes_done += b.size;
        }
    }
    throughput(bytes_done, task_time_sum, job_end, nodes, concurrent_jobs.max(1))
}

fn throughput(bytes: u64, task_time_sum: f64, job_end: f64, nodes: usize, jobs: usize) -> DfsioResult {
    // Fig. 5(a): per-disk stream bandwidth (bytes over summed task read
    // time) scaled by the cluster's parallel disks = aggregate bandwidth
    // while maps run.
    let per_task = if task_time_sum > 0.0 {
        bytes as f64 / task_time_sum * nodes as f64
    } else {
        0.0
    };
    // Fig. 5(b): per-job bandwidth over the whole batch wall time.
    let per_job = if job_end > 0.0 { bytes as f64 / jobs as f64 / job_end } else { 0.0 };
    DfsioResult {
        per_task_throughput: per_task / MB as f64,
        per_job_throughput: per_job / MB as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_util::GB;

    #[test]
    fn per_task_throughput_similar_between_filesystems() {
        // Fig. 5(a): "HDFS and DHT file system show similar IO
        // throughput" when only raw reads are measured.
        let dht = dfsio_dht(14, 14 * GB, 1);
        let hdfs = dfsio_hdfs(14, 14 * GB, 1, 7.0);
        let ratio = dht.per_task_throughput / hdfs.per_task_throughput;
        assert!((0.95..1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn per_job_throughput_favors_dht() {
        // Fig. 5(b): overheads included, the DHT FS wins clearly.
        let dht = dfsio_dht(14, 14 * GB, 1);
        let hdfs = dfsio_hdfs(14, 14 * GB, 1, 7.0);
        assert!(
            dht.per_job_throughput > 1.4 * hdfs.per_job_throughput,
            "dht {} hdfs {}",
            dht.per_job_throughput,
            hdfs.per_job_throughput
        );
    }

    #[test]
    fn throughput_scales_with_nodes() {
        let small = dfsio_dht(6, 6 * GB, 1);
        let large = dfsio_dht(38, 38 * GB, 1);
        assert!(large.per_job_throughput > 2.0 * small.per_job_throughput);
    }

    #[test]
    fn hdfs_degrades_faster_under_concurrency() {
        // §III-A: with concurrent DFSIO jobs "the IO throughput of HDFS
        // degrades at a much faster rate than the DHT file system."
        let dht1 = dfsio_dht(38, 14 * GB, 1);
        let dht8 = dfsio_dht(38, 14 * GB, 8);
        let hdfs1 = dfsio_hdfs(38, 14 * GB, 1, 7.0);
        let hdfs8 = dfsio_hdfs(38, 14 * GB, 8, 7.0);
        // The DHT FS's advantage must widen with concurrency: the master
        // path saturates while decentralized lookups stay free.
        let advantage1 = dht1.per_job_throughput / hdfs1.per_job_throughput;
        let advantage8 = dht8.per_job_throughput / hdfs8.per_job_throughput;
        assert!(
            advantage8 > advantage1,
            "advantage at 8 jobs {advantage8} vs 1 job {advantage1}"
        );
    }
}
