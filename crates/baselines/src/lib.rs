//! # eclipse-baselines
//!
//! Comparison frameworks for the paper's evaluation, built on the same
//! simulated cluster substrate as EclipseMR: a Hadoop 2.x model (central
//! NameNode, YARN container overhead, pull shuffle, fair scheduling), a
//! Spark 1.x model (RDD caching, central driver, delay scheduling,
//! sort-based disk shuffle), and the DFSIO read benchmark behind Fig. 5.

pub mod dfsio;
pub mod hadoop;
pub mod spark;

pub use dfsio::{dfsio_dht, dfsio_hdfs, DfsioResult};
pub use hadoop::{HadoopConfig, HadoopSim};
pub use spark::{SparkConfig, SparkSim};
