//! Spark 1.x comparison model (the paper's §III-E/§III-F baseline).
//!
//! Mechanisms modeled, each one the paper names when explaining a
//! result:
//!
//! * **RDD construction on the first iteration** — "Spark runs the first
//!   iteration of the iterative applications much slower than subsequent
//!   iterations because it constructs RDDs" (§III-F).
//! * **In-memory RDD partitions** — subsequent iterations read cached
//!   partitions at memory speed and skip the input re-read; iteration
//!   outputs stay in memory (no DHT-FS write), which is why Spark wins
//!   subsequent page rank iterations.
//! * **Delay scheduling** — a task waits up to 5 s for the node holding
//!   its cached partition.
//! * **Central driver / cache manager** — every task launch is a round
//!   trip through one serial resource.
//! * **Sort-based shuffle through local disk** — Spark 1.x writes
//!   shuffle files to disk and fetches after the map side completes;
//!   "Spark is known to perform worse than Hadoop for sort" (§III-E).
//! * **Final-output write** — "Spark runs page rank slower than
//!   EclipseMR in the last iteration because Spark writes its final
//!   outputs to disk storage" (§III-F).
//! * **JVM compute rates** — [`CostModel::jvm`].

use eclipse_core::{JobReport, JobSpec, ReadSource};
use eclipse_dhtfs::{HdfsFs, HdfsPlacement, NameNodeConfig};
use eclipse_sim::{ClusterConfig, SerialResource, SimCluster, SimTime};
use eclipse_util::HashKey;
use eclipse_workloads::CostModel;

/// Spark model configuration.
#[derive(Clone, Copy, Debug)]
pub struct SparkConfig {
    pub cluster: ClusterConfig,
    pub namenode: NameNodeConfig,
    /// Per-job executor/driver startup seconds.
    pub job_overhead: f64,
    /// Per-task launch overhead seconds (driver round trip + deserialize).
    pub task_overhead: f64,
    /// Delay-scheduling wait for a cached partition's node, seconds.
    pub locality_wait: f64,
    /// Extra CPU multiplier on the RDD-building first pass.
    pub rdd_build_factor: f64,
    /// RDD storage bytes per executor (per node).
    pub rdd_memory_per_node: u64,
    pub replicas: usize,
    pub block_size: u64,
}

impl SparkConfig {
    pub fn paper_defaults() -> SparkConfig {
        SparkConfig {
            cluster: ClusterConfig::paper_testbed(),
            namenode: NameNodeConfig::default(),
            job_overhead: 4.0,
            task_overhead: 0.3,
            locality_wait: 5.0,
            rdd_build_factor: 1.6,
            rdd_memory_per_node: 8 * eclipse_util::GB,
            replicas: 2,
            block_size: eclipse_util::DEFAULT_BLOCK_SIZE,
        }
    }

    pub fn with_nodes(mut self, nodes: usize) -> SparkConfig {
        self.cluster.nodes = nodes;
        self
    }
}

/// Simulated Spark deployment.
pub struct SparkSim {
    cfg: SparkConfig,
    cluster: SimCluster,
    hdfs: HdfsFs,
    /// Driver (task launch + central cache-manager metadata).
    driver: SerialResource,
    /// Per-node RDD block store (metered LRU).
    rdd_store: Vec<eclipse_cache::LruCache<HashKey>>,
    /// Which node cached which partition (central cache manager's map).
    partition_home: std::collections::HashMap<HashKey, usize>,
    clock: f64,
}

impl SparkSim {
    pub fn new(cfg: SparkConfig) -> SparkSim {
        SparkSim {
            cfg,
            cluster: SimCluster::new(cfg.cluster),
            hdfs: HdfsFs::new(cfg.cluster.nodes, cfg.replicas, cfg.namenode),
            driver: SerialResource::new(1.0, 0.002),
            rdd_store: (0..cfg.cluster.nodes)
                .map(|_| eclipse_cache::LruCache::new(cfg.rdd_memory_per_node))
                .collect(),
            partition_home: std::collections::HashMap::new(),
            clock: 0.0,
        }
    }

    pub fn now(&self) -> f64 {
        self.clock
    }

    /// The underlying simulated cluster (diagnostics).
    pub fn cluster(&self) -> &eclipse_sim::SimCluster {
        &self.cluster
    }

    pub fn upload(&mut self, name: &str, bytes: u64) {
        self.hdfs.upload(name, "hibench", bytes, self.cfg.block_size, HdfsPlacement::RoundRobin);
    }

    /// One MapReduce-equivalent Spark stage pair (map stage + reduce
    /// stage). `iter` is the iteration index; `last` marks the final
    /// iteration (output write).
    fn run_round(
        &mut self,
        spec: &JobSpec,
        cost: &CostModel,
        submit: f64,
        iter: u32,
        last: bool,
    ) -> JobReport {
        let mut report = JobReport::default();
        let nodes = self.cfg.cluster.nodes;
        report.tasks_per_node = vec![0; nodes];
        let meta = self.hdfs.open(&spec.input).expect("input uploaded").clone();
        let reducers = spec.reducers.max(1);
        let t0 = submit + if iter == 0 { self.cfg.job_overhead } else { 0.0 };

        // ---- Map stage ----------------------------------------------------
        let mut map_phase_end = t0;
        let mut map_outputs: Vec<(usize, u64, f64)> = Vec::with_capacity(meta.blocks.len());
        for block in &meta.blocks {
            // Driver launches the task (central bottleneck).
            let launched = self.driver.reserve(SimTime(t0), 0).secs();
            report.map_tasks += 1;
            // Preferred node: cached partition holder, else an HDFS
            // replica holder.
            let cached_at = self.partition_home.get(&block.key).copied();
            let holders = self.hdfs.block_locations_cached(block.id).expect("registered").to_vec();
            let preferred =
                cached_at.unwrap_or_else(|| holders.first().map(|n| n.index()).unwrap_or(0));
            let frees: Vec<f64> = (0..nodes)
                .map(|n| self.cluster.nodes[n].map_slots.next_free(SimTime(launched)).secs())
                .collect();
            // Delay scheduling: wait up to locality_wait for the
            // preferred node, then take the earliest-free node.
            let (exec, effective_start) = if frees[preferred] - launched
                <= self.cfg.locality_wait
            {
                // Free now, or free soon enough that delay scheduling
                // waits for the preferred (cache-local) node.
                (preferred, launched)
            } else {
                let fallback = (0..nodes)
                    .min_by(|&a, &b| frees[a].partial_cmp(&frees[b]).unwrap().then(a.cmp(&b)))
                    .unwrap();
                (fallback, launched + self.cfg.locality_wait)
            };
            report.tasks_per_node[exec] += 1;

            let slot_start =
                self.cluster.nodes[exec].map_slots.next_free(SimTime(effective_start)).secs();
            // Data acquisition.
            report.cache_lookups += 1;
            let (io_done, cpu_mult) = if cached_at == Some(exec)
                && self.rdd_store[exec].get(&block.key, slot_start).is_some()
            {
                report.cache_hits += 1;
                report.record_read(ReadSource::LocalCache, block.size);
                (self.cluster.mem_read(SimTime(slot_start), exec, block.size).secs(), 1.0)
            } else if let Some(home) = cached_at.filter(|&h| {
                h != exec && self.rdd_store[h].contains(&block.key, slot_start)
            }) {
                // Remote cached partition fetch.
                report.cache_hits += 1;
                report.record_read(ReadSource::RemoteCache, block.size);
                self.rdd_store[home].get(&block.key, slot_start);
                (
                    self.cluster.remote_mem_read(SimTime(slot_start), home, exec, block.size).secs(),
                    1.0,
                )
            } else {
                // Cold: read from HDFS and build the RDD partition.
                let src = if holders.iter().any(|h| h.index() == exec) {
                    report.record_read(ReadSource::LocalDisk, block.size);
                    self.cluster.disk_read(SimTime(slot_start), exec, block.size).secs()
                } else {
                    report.record_read(ReadSource::RemoteDisk, block.size);
                    self.cluster
                        .remote_disk_read(SimTime(slot_start), holders[0].index(), exec, block.size)
                        .secs()
                };
                if spec.reuse.cache_input {
                    self.rdd_store[exec].put(block.key, block.size, slot_start, None);
                    self.partition_home.insert(block.key, exec);
                }
                (src, self.cfg.rdd_build_factor)
            };
            let cpu = self.cfg.task_overhead + cost.map_cpu_secs(block.size) * cpu_mult;
            let dur = (io_done - slot_start).max(0.0) + cpu;
            let (_, end) =
                self.cluster.nodes[exec].map_slots.run(SimTime(effective_start), dur);
            map_phase_end = map_phase_end.max(end.secs());

            // Sort-based shuffle: map output written to local disk
            // (latency-only; see the Hadoop model for why no FIFO
            // reservation).
            let im = cost.intermediate_bytes(block.size);
            if im > 0 {
                let wrote = end.secs() + self.cluster.disk_latency(exec, im);
                map_outputs.push((exec, im, wrote));
            } else {
                map_outputs.push((exec, 0, end.secs()));
            }
        }
        report.map_elapsed = map_phase_end - submit;

        // ---- Shuffle fetch + reduce stage ----------------------------------
        let mut shuffle_total = 0u64;
        let total_im = cost.intermediate_bytes(meta.size);
        let mut job_end = map_phase_end;
        for r in 0..reducers {
            report.reduce_tasks += 1;
            let dest = r % nodes;
            let mut ready = map_phase_end;
            for &(src, im, out_done) in &map_outputs {
                let share = im / reducers as u64;
                if share == 0 {
                    continue;
                }
                shuffle_total += share;
                let start = out_done.max(map_phase_end);
                let read = self.cluster.disk_read(SimTime(start), src, share);
                let arrived = self.cluster.network.transfer(read, src, dest, share);
                ready = ready.max(arrived.secs());
            }
            let share = total_im / reducers as u64;
            let cpu = self.cfg.task_overhead + cost.reduce_cpu_secs(share);
            let (_, end) = self.cluster.nodes[dest].reduce_slots.run(SimTime(ready), cpu);
            let mut end_t = end.secs();
            // Iteration outputs stay in executor memory; only the final
            // round writes to stable storage. Latency-only: reducer
            // writes interleave chronologically with other reducers'
            // fetches on the same disks.
            if last {
                let out = cost
                    .output_bytes(share)
                    .max(cost.iter_output_bytes(meta.size) / reducers as u64);
                if out > 0 {
                    end_t += self.cluster.disk_latency(dest, out);
                }
            }
            job_end = job_end.max(end_t);
        }
        report.shuffle_bytes = shuffle_total;
        report.elapsed = job_end - submit;
        report
    }

    /// Run a (possibly iterative) job.
    pub fn run_job(&mut self, spec: &JobSpec) -> JobReport {
        let cost = CostModel::jvm(spec.app);
        let submit = self.clock;
        let iters = spec.iterations.max(1);
        if iters == 1 {
            let r = self.run_round(spec, &cost, submit, 0, true);
            self.clock = submit + r.elapsed;
            return r;
        }
        let mut combined =
            JobReport { tasks_per_node: vec![0; self.cfg.cluster.nodes], ..JobReport::default() };
        let mut at = submit;
        for iter in 0..iters {
            let r = self.run_round(spec, &cost, at, iter, iter + 1 == iters);
            at += r.elapsed;
            combined.iteration_times.push(r.elapsed);
            combined.map_tasks += r.map_tasks;
            combined.reduce_tasks += r.reduce_tasks;
            combined.cache_hits += r.cache_hits;
            combined.cache_lookups += r.cache_lookups;
            combined.shuffle_bytes += r.shuffle_bytes;
            for (k, v) in r.read_bytes {
                *combined.read_bytes.entry(k).or_insert(0) += v;
            }
            for (i, c) in r.tasks_per_node.iter().enumerate() {
                combined.tasks_per_node[i] += c;
            }
        }
        combined.elapsed = at - submit;
        self.clock = at;
        combined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_util::GB;
    use eclipse_workloads::AppKind;

    fn spark(nodes: usize) -> SparkSim {
        SparkSim::new(SparkConfig::paper_defaults().with_nodes(nodes))
    }

    #[test]
    fn first_iteration_slower_than_subsequent() {
        let mut s = spark(8);
        s.upload("pts", 4 * GB);
        let r = s.run_job(&JobSpec::iterative(AppKind::KMeans, "pts", 5));
        assert_eq!(r.iteration_times.len(), 5);
        let first = r.iteration_times[0];
        let mid = r.iteration_times[2];
        assert!(
            mid < first * 0.8,
            "RDD build must make iter0 slow: first {first} mid {mid}"
        );
    }

    #[test]
    fn rdd_cache_hits_on_later_iterations() {
        let mut s = spark(8);
        s.upload("pts", 2 * GB);
        let r = s.run_job(&JobSpec::iterative(AppKind::KMeans, "pts", 3));
        assert!(r.cache_hits > 0);
        // 16 blocks × 2 warm iterations — all from RDD cache.
        assert_eq!(r.cache_hits, 32);
    }

    #[test]
    fn last_pagerank_iteration_pays_output_write() {
        let mut s = spark(8);
        s.upload("graph", 2 * GB);
        let r = s.run_job(&JobSpec::iterative(AppKind::PageRank, "graph", 5).with_reducers(16));
        let mid = r.iteration_times[2];
        let last = *r.iteration_times.last().unwrap();
        assert!(last > mid, "final write: mid {mid} last {last}");
    }

    #[test]
    fn delay_scheduling_prefers_cached_partition_homes() {
        let mut s = spark(8);
        s.upload("pts", 2 * GB);
        let spec = JobSpec::iterative(AppKind::KMeans, "pts", 3);
        let r = s.run_job(&spec);
        // After iteration 1 caches the partitions, tasks re-land where
        // their partitions live: local cache hits, no remote fetches.
        assert_eq!(
            r.read_bytes.get("remote_cache").copied().unwrap_or(0),
            0,
            "{:?}",
            r.read_bytes
        );
        assert!(r.read_bytes.get("local_cache").copied().unwrap_or(0) >= 2 * 2 * GB);
    }

    #[test]
    fn driver_serializes_task_launches() {
        // The central driver is a queue: a huge task count stretches the
        // launch ramp measurably.
        let mut small = spark(8);
        small.upload("d", 2 * GB);
        let t_small = small.run_job(&JobSpec::batch(AppKind::Grep, "d")).elapsed;
        let mut big = spark(8);
        big.upload("d", 64 * GB);
        let t_big = big.run_job(&JobSpec::batch(AppKind::Grep, "d")).elapsed;
        assert!(t_big > t_small, "more tasks, more driver work: {t_big} vs {t_small}");
    }

    #[test]
    fn rdd_memory_pressure_evicts() {
        // RDD store smaller than the dataset: later iterations cannot be
        // fully cached, so cold reads persist.
        let mut cfg = SparkConfig::paper_defaults().with_nodes(4);
        cfg.rdd_memory_per_node = eclipse_util::GB / 2; // 2 GB total
        let mut s = SparkSim::new(cfg);
        s.upload("pts", 8 * GB);
        let r = s.run_job(&JobSpec::iterative(AppKind::KMeans, "pts", 3));
        let disk_reads = r.read_bytes.get("local_disk").copied().unwrap_or(0)
            + r.read_bytes.get("remote_disk").copied().unwrap_or(0);
        assert!(
            disk_reads > 8 * GB,
            "evictions force re-reads beyond the first pass: {:?}",
            r.read_bytes
        );
    }

    #[test]
    fn batch_job_runs() {
        let mut s = spark(4);
        s.upload("text", GB);
        let r = s.run_job(&JobSpec::batch(AppKind::Grep, "text"));
        assert_eq!(r.map_tasks, 8);
        assert!(r.elapsed > 0.0);
    }
}
