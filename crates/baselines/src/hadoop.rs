//! Hadoop 2.x comparison model (the paper's §III-E baseline).
//!
//! Mechanisms the paper explicitly attributes Hadoop's slowness to, all
//! modeled here on the same simulated cluster EclipseMR runs on:
//!
//! * **Central NameNode** — every job open and block-location lookup is
//!   a round trip through one serial resource (queueing under load).
//! * **YARN container overhead** — "each Yarn container spends more than
//!   7 seconds for initialization and authentication ... for every
//!   128 MB block" (§III-E).
//! * **Pull-based shuffle** — map output is written to the mapper's
//!   local disk; reducers fetch it only after the map finishes, and the
//!   reduce phase cannot start before the whole map phase completes.
//! * **Fair scheduling** — locality if a replica holder is free,
//!   otherwise the least-loaded node; no cache layer at all (HDFS
//!   in-memory caching is local-input-only and does not help cold runs).
//! * **JVM compute rates** — [`CostModel::jvm`].
//! * **Replicated output writes** — final output lands on HDFS with
//!   pipeline replication.

use eclipse_core::{JobReport, JobSpec, ReadSource};
use eclipse_dhtfs::{HdfsFs, HdfsPlacement, NameNodeConfig};
use eclipse_sched::FairScheduler;
use eclipse_sim::{ClusterConfig, SerialResource, SimCluster, SimTime};
use eclipse_util::HashKey;
use eclipse_workloads::CostModel;

/// Hadoop model configuration.
#[derive(Clone, Copy, Debug)]
pub struct HadoopConfig {
    pub cluster: ClusterConfig,
    pub namenode: NameNodeConfig,
    /// Per-task container init + authentication seconds (paper: >7 s).
    pub container_overhead: f64,
    /// Per-job setup seconds (job submission, AM start).
    pub job_overhead: f64,
    /// HDFS replication factor minus one.
    pub replicas: usize,
    pub block_size: u64,
    /// OS page-cache bytes per node.
    pub page_cache_per_node: u64,
}

impl HadoopConfig {
    pub fn paper_defaults() -> HadoopConfig {
        HadoopConfig {
            cluster: ClusterConfig::paper_testbed(),
            namenode: NameNodeConfig::default(),
            container_overhead: 7.0,
            job_overhead: 10.0,
            replicas: 2,
            block_size: eclipse_util::DEFAULT_BLOCK_SIZE,
            page_cache_per_node: 4 * eclipse_util::GB,
        }
    }

    pub fn with_nodes(mut self, nodes: usize) -> HadoopConfig {
        self.cluster.nodes = nodes;
        self
    }
}

/// Simulated Hadoop deployment.
pub struct HadoopSim {
    cfg: HadoopConfig,
    cluster: SimCluster,
    hdfs: HdfsFs,
    sched: FairScheduler,
    /// NameNode RPC queue.
    namenode: SerialResource,
    page_cache: Vec<eclipse_cache::LruCache<HashKey>>,
    clock: f64,
}

impl HadoopSim {
    pub fn new(cfg: HadoopConfig) -> HadoopSim {
        HadoopSim {
            cfg,
            cluster: SimCluster::new(cfg.cluster),
            hdfs: HdfsFs::new(cfg.cluster.nodes, cfg.replicas, cfg.namenode),
            sched: FairScheduler::new(cfg.cluster.nodes),
            namenode: SerialResource::new(1.0, cfg.namenode.op_service_time),
            page_cache: (0..cfg.cluster.nodes)
                .map(|_| eclipse_cache::LruCache::new(cfg.page_cache_per_node))
                .collect(),
            clock: 0.0,
        }
    }

    pub fn now(&self) -> f64 {
        self.clock
    }

    pub fn hdfs(&self) -> &HdfsFs {
        &self.hdfs
    }

    pub fn upload(&mut self, name: &str, bytes: u64) {
        self.hdfs.upload(name, "hibench", bytes, self.cfg.block_size, HdfsPlacement::RoundRobin);
    }

    /// Upload through a single writer node — the skewed-primary pattern.
    pub fn upload_from(&mut self, name: &str, bytes: u64, writer: u32) {
        self.hdfs.upload(
            name,
            "hibench",
            bytes,
            self.cfg.block_size,
            HdfsPlacement::WriterLocal(eclipse_ring::NodeId(writer)),
        );
    }

    /// One NameNode RPC at `at`; returns the completion time.
    fn namenode_rpc(&mut self, at: f64) -> f64 {
        self.namenode.reserve(SimTime(at), 0).secs()
    }

    /// Run one MapReduce round.
    fn run_round(&mut self, spec: &JobSpec, cost: &CostModel, submit: f64) -> JobReport {
        let mut report =
            JobReport { tasks_per_node: vec![0; self.cfg.cluster.nodes], ..JobReport::default() };
        let meta = self.hdfs.open(&spec.input).expect("input uploaded").clone();
        let reducers = spec.reducers.max(1);

        // Job setup: AM launch + NameNode open.
        let mut t0 = submit + self.cfg.job_overhead;
        t0 = self.namenode_rpc(t0);

        // ---- Map phase --------------------------------------------------
        let mut map_phase_end = t0;
        let mut assigned = vec![0u64; self.cfg.cluster.nodes];
        // (mapper node, intermediate bytes, map end) per task.
        let mut map_outputs: Vec<(usize, u64, f64)> = Vec::with_capacity(meta.blocks.len());
        for block in &meta.blocks {
            // Block-location lookup through the NameNode.
            let lookup_done = self.namenode_rpc(t0);
            let holders = self.hdfs.block_locations(block.id).expect("registered").to_vec();
            // Tie-break equally-free nodes by tasks already assigned in
            // this round: YARN hands out one container per node heartbeat,
            // which spreads a wave over the cluster instead of stacking
            // it on the lowest node id.
            let frees: Vec<f64> = (0..self.cfg.cluster.nodes)
                .map(|n| {
                    self.cluster.nodes[n].map_slots.next_free(SimTime(lookup_done)).secs()
                        + 1e-7 * assigned[n] as f64
                })
                .collect();
            let decision = self.sched.decide(&holders, lookup_done, |n| frees[n.index()]);
            assigned[decision.node.index()] += 1;
            let exec = decision.node;
            report.tasks_per_node[exec.index()] += 1;
            report.map_tasks += 1;
            let slot_start =
                self.cluster.nodes[exec.index()].map_slots.next_free(SimTime(lookup_done)).secs();

            // Read input: page cache, local disk, or remote disk.
            let io_done = if self.page_cache[exec.index()].get(&block.key, slot_start).is_some() {
                report.record_read(ReadSource::PageCache, block.size);
                self.cluster.mem_read(SimTime(slot_start), exec.index(), block.size).secs()
            } else if holders.contains(&exec) {
                report.record_read(ReadSource::LocalDisk, block.size);
                let d = self.cluster.disk_read(SimTime(slot_start), exec.index(), block.size);
                self.page_cache[exec.index()].put(block.key, block.size, slot_start, None);
                d.secs()
            } else {
                report.record_read(ReadSource::RemoteDisk, block.size);
                let d = self.cluster.remote_disk_read(
                    SimTime(slot_start),
                    holders[0].index(),
                    exec.index(),
                    block.size,
                );
                self.page_cache[exec.index()].put(block.key, block.size, slot_start, None);
                d.secs()
            };

            // Container init + map compute.
            let cpu = self.cfg.container_overhead + cost.map_cpu_secs(block.size);
            let dur = (io_done - slot_start).max(0.0) + cpu;
            let (_, end) =
                self.cluster.nodes[exec.index()].map_slots.run(SimTime(lookup_done), dur);
            map_phase_end = map_phase_end.max(end.secs());

            // Map output spills to the mapper's local disk. Latency-only:
            // this write happens between other tasks' input reads, so a
            // FIFO reservation here would reorder the horizon.
            let im = cost.intermediate_bytes(block.size);
            if im > 0 {
                let wrote = end.secs() + self.cluster.disk_latency(exec.index(), im);
                map_outputs.push((exec.index(), im, wrote));
            } else {
                map_outputs.push((exec.index(), 0, end.secs()));
            }
        }
        report.map_elapsed = map_phase_end - submit;

        // ---- Shuffle (pull, after the map phase) -------------------------
        // Reducers are placed round-robin; each pulls its slice of every
        // map output once the map phase completes.
        let mut reducer_ready = vec![map_phase_end; reducers];
        let mut shuffle_total = 0u64;
        for (r, ready) in reducer_ready.iter_mut().enumerate() {
            let dest = r % self.cfg.cluster.nodes;
            for &(src, im, out_done) in &map_outputs {
                let share = im / reducers as u64;
                if share == 0 {
                    continue;
                }
                shuffle_total += share;
                let start = out_done.max(map_phase_end);
                // Read from mapper disk, ship to reducer.
                let read = self.cluster.disk_read(SimTime(start), src, share);
                let arrived = self.cluster.network.transfer(read, src, dest, share);
                *ready = ready.max(arrived.secs());
            }
        }
        report.shuffle_bytes = shuffle_total;

        // ---- Reduce phase -----------------------------------------------
        let total_im = cost.intermediate_bytes(meta.size);
        let mut job_end = map_phase_end;
        for (r, &ready) in reducer_ready.iter().enumerate() {
            report.reduce_tasks += 1;
            let dest = r % self.cfg.cluster.nodes;
            let share = total_im / reducers as u64;
            let cpu = self.cfg.container_overhead + cost.reduce_cpu_secs(share);
            let (_, end) = self.cluster.nodes[dest].reduce_slots.run(SimTime(ready), cpu);
            // Output: HDFS pipeline write (local disk + replica copies).
            let out = cost.output_bytes(share);
            let mut end_t = end.secs();
            if out > 0 {
                let w = self.cluster.disk_read(SimTime(end.secs()), dest, out);
                let rep = self
                    .cluster
                    .network
                    .transfer(SimTime(end.secs()), dest, (dest + 1) % self.cfg.cluster.nodes, out);
                end_t = w.secs().max(rep.secs());
            }
            job_end = job_end.max(end_t);
        }
        report.elapsed = job_end - submit;
        report
    }

    /// Run a (possibly iterative) job. Every iteration pays full Hadoop
    /// overheads — why the paper drops Hadoop from the iterative
    /// comparisons ("Hadoop is an order of magnitude slower", §III-E).
    pub fn run_job(&mut self, spec: &JobSpec) -> JobReport {
        let cost = CostModel::hadoop(spec.app);
        let submit = self.clock;
        if spec.iterations <= 1 {
            let r = self.run_round(spec, &cost, submit);
            self.clock = submit + r.elapsed;
            return r;
        }
        let mut combined =
            JobReport { tasks_per_node: vec![0; self.cfg.cluster.nodes], ..JobReport::default() };
        let mut at = submit;
        for _ in 0..spec.iterations {
            let r = self.run_round(spec, &cost, at);
            at += r.elapsed;
            combined.iteration_times.push(r.elapsed);
            combined.map_tasks += r.map_tasks;
            combined.reduce_tasks += r.reduce_tasks;
            combined.shuffle_bytes += r.shuffle_bytes;
            for (k, v) in r.read_bytes {
                *combined.read_bytes.entry(k).or_insert(0) += v;
            }
            for (i, c) in r.tasks_per_node.iter().enumerate() {
                combined.tasks_per_node[i] += c;
            }
        }
        combined.elapsed = at - submit;
        self.clock = at;
        combined
    }

    /// Total NameNode RPCs issued (scalability metric for Fig. 5).
    pub fn namenode_rpcs(&self) -> u64 {
        self.namenode.requests()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclipse_util::GB;
    use eclipse_workloads::AppKind;

    fn hadoop(nodes: usize) -> HadoopSim {
        HadoopSim::new(HadoopConfig::paper_defaults().with_nodes(nodes))
    }

    #[test]
    fn job_runs_and_charges_overheads() {
        let mut h = hadoop(8);
        h.upload("text", 4 * GB);
        let r = h.run_job(&JobSpec::batch(AppKind::Grep, "text"));
        assert_eq!(r.map_tasks, 32);
        // 32 tasks × 7 s over 64 slots ≥ one full wave of overhead.
        assert!(r.elapsed > 10.0 + 7.0, "elapsed {}", r.elapsed);
        assert!(h.namenode_rpcs() >= 33, "per-block lookups");
    }

    #[test]
    fn slower_than_reduce_free_lower_bound() {
        // Container overhead must push Hadoop's grep far beyond raw IO.
        let mut h = hadoop(4);
        h.upload("d", GB);
        let r = h.run_job(&JobSpec::batch(AppKind::Grep, "d"));
        // 8 blocks over 32 slots: one wave ≈ overhead (10) + 7 + read ~1.3.
        assert!(r.elapsed >= 18.0, "elapsed {}", r.elapsed);
    }

    #[test]
    fn iterative_pays_every_round() {
        let mut h = hadoop(4);
        h.upload("pts", GB);
        let r = h.run_job(&JobSpec::iterative(AppKind::KMeans, "pts", 3));
        assert_eq!(r.iteration_times.len(), 3);
        // No cross-iteration caching: iterations do not speed up much.
        let first = r.iteration_times[0];
        let last = r.iteration_times[2];
        assert!(last > first * 0.5, "unexpected speedup {first} -> {last}");
    }

    #[test]
    fn page_cache_warms_across_iterations_but_containers_still_dominate() {
        let mut h = hadoop(4);
        h.upload("pts", GB);
        let r = h.run_job(&JobSpec::iterative(AppKind::KMeans, "pts", 2));
        // Second round reads from the page cache …
        assert!(r.read_bytes.get("page_cache").copied().unwrap_or(0) >= GB);
        // … yet both rounds pay container + job overheads.
        for (i, t) in r.iteration_times.iter().enumerate() {
            assert!(*t > 7.0 + 10.0, "iteration {i} below floor: {t}");
        }
    }

    #[test]
    fn fair_scheduler_achieves_locality_on_balanced_input() {
        let mut h = hadoop(8);
        h.upload("d", 8 * GB);
        let r = h.run_job(&JobSpec::batch(AppKind::Grep, "d"));
        let local = r.read_bytes.get("local_disk").copied().unwrap_or(0);
        let remote = r.read_bytes.get("remote_disk").copied().unwrap_or(0);
        assert!(
            local > 3 * remote,
            "round-robin placement should be mostly local: local {local} remote {remote}"
        );
    }

    #[test]
    fn writer_local_upload_forces_remote_reads() {
        let mut h = hadoop(8);
        h.upload_from("d", 8 * GB, 0);
        let r = h.run_job(&JobSpec::batch(AppKind::Grep, "d"));
        // All primaries on node 0: most tasks read replicas or remote.
        let total: u64 = r.read_bytes.values().sum();
        assert_eq!(total, 8 * GB);
        assert!(
            r.tasks_per_node[0] < r.map_tasks,
            "one node cannot run the whole job: {:?}",
            r.tasks_per_node
        );
    }

    #[test]
    fn shuffle_pulls_after_map_phase() {
        let mut h = hadoop(4);
        h.upload("d", GB);
        let r = h.run_job(&JobSpec::batch(AppKind::Sort, "d").with_reducers(8));
        assert_eq!(r.shuffle_bytes, GB / 8 * 8);
        assert!(r.elapsed > r.map_elapsed, "reduce strictly after maps");
    }
}
